"""Property-based invariants: random DAGs × fault schedules × policies.

The fault layer (:mod:`repro.engine.faults`) perturbs the engine in ways
no example-based test can enumerate — crashes land mid-wave, stragglers
stack with spill factors, spot reclamations race idle releases.  This
suite pins the properties that must survive *any* such combination:

- **conservation of work** — every stage's tasks eventually complete;
  task starts equal the plan's task count plus the retries failures
  forced;
- **capacity** — no skyline breakpoint ever exceeds the provisioned
  ceiling, dedicated or pooled;
- **clock monotonicity** — skylines and query records only move forward
  in time;
- **occupancy accounting** — the skyline integral equals the classified
  (spot + on-demand) executor-seconds, and the discounted bill never
  exceeds the undiscounted one: wasted work is *inside* the skyline, so
  billing stays conservative under every fault schedule.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.allocation import (
    BudgetAllocation,
    DynamicAllocation,
    StaticAllocation,
)
from repro.engine.cluster import Cluster
from repro.engine.faults import FaultInjector, FaultPlan, FaultStats, SpotMarket
from repro.engine.scheduler import simulate_query
from repro.engine.stages import Stage, StageGraph
from repro.fleet.arrivals import QueryArrival
from repro.fleet.engine import FleetConfig, FleetEngine, static_allocator

CLUSTER = Cluster()


@st.composite
def stage_graphs(draw):
    """Random small DAGs: ragged widths, skew, tick-colliding drivers."""
    n_stages = draw(st.integers(1, 5))
    stages = []
    for sid in range(n_stages):
        deps = (
            sorted(
                draw(
                    st.sets(st.integers(0, sid - 1), min_size=0, max_size=min(sid, 2))
                )
            )
            if sid
            else []
        )
        stages.append(
            Stage(
                stage_id=sid,
                num_tasks=draw(st.integers(1, 24)),
                task_seconds=draw(
                    st.floats(0.1, 6.0, allow_nan=False, allow_infinity=False)
                ),
                dependencies=deps,
                skew_fraction=draw(st.floats(0.0, 0.3)),
                skew_factor=draw(st.floats(1.0, 2.0)),
            )
        )
    return StageGraph(
        stages=stages,
        driver_seconds=draw(st.sampled_from([0.0, 1.0, 2.5])),
        working_set_bytes=draw(st.sampled_from([0.0, 200 * 1024**3])),
        query_id="inv",
    )


@st.composite
def fault_plans(draw):
    """Random active fault schedules (replacement on, so runs terminate)."""
    spot = draw(
        st.one_of(
            st.none(),
            st.builds(
                SpotMarket,
                fraction=st.sampled_from([0.3, 1.0]),
                discount=st.sampled_from([0.1, 0.35, 1.0]),
                reclaim_rate=st.sampled_from([0.0, 1.0 / 40.0, 1.0 / 200.0]),
            ),
        )
    )
    return FaultPlan(
        seed=draw(st.integers(0, 999)),
        crash_rate=draw(st.sampled_from([0.0, 1.0 / 30.0, 1.0 / 150.0])),
        straggler_rate=draw(st.sampled_from([0.0, 0.2, 0.6])),
        straggler_factor=draw(st.sampled_from([1.5, 4.0])),
        spot=spot,
    )


@st.composite
def policies(draw):
    budget = draw(st.integers(1, 24))
    kind = draw(st.sampled_from(["budget", "static", "dynamic"]))
    if kind == "budget":
        return BudgetAllocation(
            budget, idle_timeout=draw(st.sampled_from([None, 2.0]))
        )
    if kind == "static":
        return StaticAllocation(budget)
    return DynamicAllocation(1, max(2, budget), idle_timeout=5.0)


def assert_clock_monotone(skyline):
    times = [t for t, _ in skyline.points]
    assert times == sorted(times)
    assert all(count >= 0 for _, count in skyline.points)


class TestSingleQueryInvariants:
    @settings(
        max_examples=60,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(graph=stage_graphs(), plan=fault_plans(), policy=policies())
    def test_conservation_capacity_accounting(self, graph, plan, policy):
        result = simulate_query(graph, policy, CLUSTER, faults=plan)

        # clock monotonicity + capacity at every breakpoint
        assert_clock_monotone(result.skyline)
        assert result.runtime >= graph.driver_seconds
        assert result.max_executors <= CLUSTER.max_executors

        stats = result.fault_stats
        if not plan.active:
            assert stats is None
            return

        # conservation of work: every task completed exactly once beyond
        # the re-executions failures forced
        assert stats.tasks_started == graph.total_tasks + stats.tasks_killed
        assert stats.replacements == stats.failures

        # occupancy accounting: every executor-second is classified, and
        # the discounted bill never exceeds the undiscounted skyline
        classified = stats.spot_executor_seconds + stats.ondemand_executor_seconds
        assert classified == pytest.approx(result.auc, rel=1e-9, abs=1e-9)
        assert stats.billed_executor_seconds <= result.auc + 1e-9

        # wasted (destroyed) work happened on allocated cores, so it is
        # bounded by the skyline's core-seconds
        assert 0.0 <= stats.wasted_task_seconds
        assert stats.wasted_task_seconds <= (
            result.auc * CLUSTER.cores_per_executor + 1e-9
        )

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(graph=stage_graphs(), plan=fault_plans())
    def test_same_seed_bit_identical_different_seed_differs(self, graph, plan):
        policy = BudgetAllocation(8, idle_timeout=5.0)
        first = simulate_query(graph, policy, CLUSTER, faults=plan)
        second = simulate_query(graph, policy, CLUSTER, faults=plan)
        assert first.runtime == second.runtime
        assert first.auc == second.auc
        assert first.skyline.points == second.skyline.points
        if plan.active:
            assert first.fault_stats.as_dict() == second.fault_stats.as_dict()


class _GraphWorkload:
    """Minimal workload stub serving one explicit stage graph."""

    def __init__(self, graph):
        self._graph = graph

    def stage_graph(self, query_id):
        return self._graph

    def optimized_plan(self, query_id):
        return None


class TestFleetInvariants:
    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        graph=stage_graphs(),
        plan=fault_plans(),
        capacity=st.integers(4, 32),
        budget=st.integers(1, 16),
        n_queries=st.integers(1, 8),
        data=st.data(),
    )
    def test_stream_conserves_work_and_capacity(
        self, graph, plan, capacity, budget, n_queries, data
    ):
        gaps = data.draw(
            st.lists(
                st.floats(0.0, 30.0, allow_nan=False),
                min_size=n_queries,
                max_size=n_queries,
            )
        )
        times = np.cumsum(gaps)
        arrivals = [
            QueryArrival(i, "inv", i % 3, float(times[i])) for i in range(n_queries)
        ]
        metrics = FleetEngine(
            _GraphWorkload(graph),
            capacity=capacity,
            allocator=static_allocator(budget),
            config=FleetConfig(idle_release_timeout=5.0, faults=plan),
        ).serve(arrivals)

        # every query finished, clocks ordered, pool capacity respected
        # at every breakpoint of the reserved skyline
        assert metrics.n_queries == n_queries
        assert metrics.capacity_respected
        assert_clock_monotone(metrics.pool_skyline)
        # the pool fully drains once the stream is served
        assert metrics.pool_skyline.points[-1][1] == 0
        for record in metrics.records:
            assert record.arrival_time <= record.admit_time <= record.finish_time
            assert_clock_monotone(record.skyline)
            if plan.active:
                stats = record.fault_stats
                assert stats.tasks_started == graph.total_tasks + stats.tasks_killed

        if plan.active:
            merged = metrics.fault_stats
            classified = (
                merged.spot_executor_seconds + merged.ondemand_executor_seconds
            )
            assert classified == pytest.approx(
                metrics.total_executor_seconds, rel=1e-9, abs=1e-9
            )
            assert merged.billed_executor_seconds <= (
                metrics.total_executor_seconds + 1e-9
            )


class TestValidation:
    def test_fault_plan_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=-1)
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(straggler_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(straggler_factor=0.5)

    def test_spot_market_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SpotMarket(fraction=1.5)
        with pytest.raises(ValueError):
            SpotMarket(discount=-0.1)
        with pytest.raises(ValueError):
            SpotMarket(reclaim_rate=-1.0)

    def test_injector_rejects_negative_query_key(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(crash_rate=0.1), query_key=-1)

    def test_inert_plan_builds_no_injector(self):
        assert FaultPlan(seed=42).injector() is None
        assert not FaultPlan().active
        assert FaultPlan(spot=SpotMarket()).active

    def test_stats_merge(self):
        a = FaultStats(crashes=1, tasks_started=5, spot_executor_seconds=2.0)
        b = FaultStats(
            reclamations=2,
            tasks_killed=3,
            ondemand_executor_seconds=4.0,
            spot_discount=0.5,
        )
        merged = FaultStats.merged([a, b])
        assert merged.failures == 3
        assert merged.tasks_started == 5
        assert merged.tasks_killed == 3
        assert merged.spot_executor_seconds == 2.0
        assert merged.ondemand_executor_seconds == 4.0
        assert merged.spot_discount == 0.5
        assert FaultStats.merged([]).failures == 0

    def test_merge_keeps_discount_past_empty_ledgers(self):
        # An idle pool's all-zero ledger merged last must not reset the
        # cluster's spot discount back to full price.
        spot = FaultStats(spot_executor_seconds=1000.0, spot_discount=0.35)
        merged = FaultStats.merged([spot, FaultStats.merged([])])
        assert merged.spot_discount == 0.35
        assert merged.billed_executor_seconds == pytest.approx(350.0)

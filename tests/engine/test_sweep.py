"""Sweep backend: compiled plans and batched executor-count sweeps.

The contract under test is the strongest the engine makes: for every
plan and candidate count, :func:`simulate_query_sweep` must be
*bit-identical* to calling :func:`simulate_query` once per count — same
runtimes, same AUCs, same skylines, same execution logs — including
request clamping, duplicate counts, and the event-driven fallbacks for
scaling policies and shared-pool capacity sources.
"""

import numpy as np
import pytest

from repro.engine.allocation import DynamicAllocation, StaticAllocation
from repro.engine.cluster import Cluster, UnboundedCapacity
from repro.engine.scheduler import SchedulerConfig, simulate_query
from repro.engine.sweep import compile_plan, simulate_query_sweep
from repro.engine.stages import Stage, StageGraph
from repro.fleet.admission import CapacityArbiter
from repro.workloads.generator import Workload


@pytest.fixture(scope="module")
def cluster():
    return Cluster()


@pytest.fixture(scope="module")
def workload():
    return Workload(scale_factor=100)


def one_stage(num_tasks=16, task_seconds=1.0, driver=0.0, ws=0.0):
    return StageGraph(
        stages=[
            Stage(stage_id=0, num_tasks=num_tasks, task_seconds=task_seconds)
        ],
        driver_seconds=driver,
        working_set_bytes=ws,
        query_id="unit",
    )


def chain(widths=(8, 4, 1), task_seconds=1.0, driver=2.0):
    stages = []
    for i, w in enumerate(widths):
        stages.append(
            Stage(
                stage_id=i,
                num_tasks=w,
                task_seconds=task_seconds,
                dependencies=[i - 1] if i > 0 else [],
            )
        )
    return StageGraph(stages=stages, driver_seconds=driver, query_id="chain")


def diamond():
    """Two independent branches joining — exercises emission ordering."""
    stages = [
        Stage(stage_id=0, num_tasks=24, task_seconds=1.0),
        Stage(stage_id=1, num_tasks=24, task_seconds=1.0),
        Stage(stage_id=2, num_tasks=6, task_seconds=2.5, dependencies=[0]),
        Stage(stage_id=3, num_tasks=90, task_seconds=0.4, dependencies=[1]),
        Stage(stage_id=4, num_tasks=12, task_seconds=1.2, dependencies=[2, 3]),
    ]
    return StageGraph(stages=stages, driver_seconds=1.5, query_id="diamond")


def skewed(ws=0.0):
    """Straggler-heavy stages: uneven durations stress the FIFO drain."""
    stages = [
        Stage(
            stage_id=0,
            num_tasks=60,
            task_seconds=0.8,
            skew_fraction=0.1,
            skew_factor=2.0,
            skew_work_share=0.15,
        ),
        Stage(
            stage_id=1,
            num_tasks=7,
            task_seconds=3.0,
            dependencies=[0],
            skew_fraction=0.3,
            skew_factor=1.7,
        ),
    ]
    return StageGraph(
        stages=stages,
        driver_seconds=0.5,
        working_set_bytes=ws,
        query_id="skewed",
    )


def assert_bit_identical(loop_result, sweep_result, check_log=False):
    assert loop_result.runtime == sweep_result.runtime
    assert loop_result.auc == sweep_result.auc
    assert loop_result.max_executors == sweep_result.max_executors
    assert loop_result.total_tasks == sweep_result.total_tasks
    assert loop_result.fully_allocated == sweep_result.fully_allocated
    assert loop_result.skyline.points == sweep_result.skyline.points
    if check_log:
        ll, sl = loop_result.execution_log, sweep_result.execution_log
        assert ll is not None and sl is not None
        assert ll.executors_used == sl.executors_used
        assert ll.driver_seconds == sl.driver_seconds
        for stage_l, stage_s in zip(ll.stages, sl.stages):
            assert stage_l.stage_id == stage_s.stage_id
            assert stage_l.dependencies == stage_s.dependencies
            assert np.array_equal(
                stage_l.task_durations, stage_s.task_durations
            )


class TestCompiledPlan:
    def test_topology_and_durations(self):
        plan = compile_plan(diamond())
        assert plan.roots == (0, 1)
        assert plan.dependents[0] == (2,)
        assert plan.dependents[1] == (3,)
        assert plan.dependents[3] == (4,)
        assert plan.dependencies[4] == (2, 3)
        assert plan.total_tasks == 24 + 24 + 6 + 90 + 12
        assert plan.driver_seconds == 1.5

    def test_duration_arrays_are_read_only(self):
        plan = compile_plan(skewed())
        with pytest.raises(ValueError):
            plan.durations[0][0] = 1.0

    def test_durations_match_stage_profile(self):
        graph = skewed()
        plan = compile_plan(graph)
        for stage in graph.stages:
            assert np.array_equal(
                plan.durations[stage.stage_id], stage.task_durations()
            )

    def test_simulate_rejects_zero_executors(self, cluster):
        plan = compile_plan(one_stage())
        with pytest.raises(ValueError, match="at least 1"):
            plan.simulate(0, cluster)
        with pytest.raises(ValueError, match="at least 1"):
            plan.sweep([4, 0], cluster)


class TestToyEquivalence:
    @pytest.mark.parametrize(
        "graph_fn",
        [one_stage, chain, diamond, skewed],
        ids=["one_stage", "chain", "diamond", "skewed"],
    )
    def test_bit_identical_across_counts(self, graph_fn, cluster):
        graph = graph_fn()
        counts = list(range(1, 129))
        sweep = simulate_query_sweep(graph, counts, cluster)
        for n, s in zip(counts, sweep):
            r = simulate_query(graph, StaticAllocation(n), cluster)
            assert_bit_identical(r, s)

    def test_spill_physics_bit_identical(self, cluster):
        graph = skewed(ws=5 * cluster.executor_memory_bytes)
        config = SchedulerConfig(spill_coefficient=1.1, max_spill_factor=2.5)
        sweep = simulate_query_sweep(graph, range(1, 33), cluster, config)
        for n, s in zip(range(1, 33), sweep):
            r = simulate_query(graph, StaticAllocation(n), cluster, config)
            assert_bit_identical(r, s)

    def test_execution_logs_bit_identical(self, cluster):
        graph = skewed()
        counts = [1, 3, 16]
        sweep = simulate_query_sweep(
            graph, counts, cluster, record_log=True
        )
        for n, s in zip(counts, sweep):
            r = simulate_query(
                graph, StaticAllocation(n), cluster, record_log=True
            )
            assert_bit_identical(r, s, check_log=True)

    def test_duplicate_and_clamped_counts_share_results(self, cluster):
        graph = chain()
        counts = [4, 4, cluster.max_executors, cluster.max_executors + 64]
        sweep = simulate_query_sweep(graph, counts, cluster)
        assert sweep[0] is sweep[1]
        # beyond pool capacity clamps to the same effective fleet
        assert sweep[2] is sweep[3]
        r = simulate_query(
            graph, StaticAllocation(cluster.max_executors + 64), cluster
        )
        assert_bit_identical(r, sweep[3])

    def test_compiled_plan_reusable_across_sweeps(self, cluster):
        graph = diamond()
        plan = compile_plan(graph)
        first = simulate_query_sweep(plan, [2, 8], cluster)
        second = simulate_query_sweep(plan, [2, 8], cluster)
        for a, b in zip(first, second):
            assert_bit_identical(a, b)


class TestTPCDSEquivalence:
    """The acceptance bar: bit-identical on every TPC-DS plan."""

    def test_every_plan_bit_identical(self, workload, cluster):
        rng = np.random.default_rng(7)
        for qid in workload:
            graph = workload.stage_graph(qid)
            counts = sorted(
                {1, 16, 48, *rng.integers(1, 129, size=2).tolist()}
            )
            sweep = simulate_query_sweep(graph, counts, cluster)
            for n, s in zip(counts, sweep):
                r = simulate_query(graph, StaticAllocation(n), cluster)
                assert_bit_identical(r, s)

    def test_q94_dense_grid_bit_identical(self, workload, cluster):
        graph = workload.stage_graph("q94")
        counts = list(range(1, 129))
        sweep = simulate_query_sweep(graph, counts, cluster)
        for n, s in zip(counts, sweep):
            r = simulate_query(graph, StaticAllocation(n), cluster)
            assert_bit_identical(r, s)


class TestFallbackPaths:
    def test_scaling_policy_falls_back_to_event_loop(self, cluster):
        graph = diamond()
        counts = [4, 12, 48]
        sweep = simulate_query_sweep(
            graph,
            counts,
            cluster,
            policy_factory=lambda n: DynamicAllocation(1, n),
        )
        for n, s in zip(counts, sweep):
            r = simulate_query(graph, DynamicAllocation(1, n), cluster)
            assert_bit_identical(r, s)
        # dynamic allocation really took a different trajectory than SA
        assert sweep[-1].skyline.points != [(0.0, 48)]

    def test_unbounded_subclass_is_not_fast_pathed(self, cluster):
        class Stingy(UnboundedCapacity):
            """Grants a 2-executor budget in total, despite its parentage."""

            def __init__(self) -> None:
                self.left = 2

            def acquire(self, count: int) -> int:
                granted = min(self.left, count)
                self.left -= granted
                return granted

        graph = one_stage(num_tasks=32)
        sweep = simulate_query_sweep(
            graph, [16], cluster, capacity_source=Stingy()
        )
        loop = simulate_query(
            graph, StaticAllocation(16), cluster, capacity_source=Stingy()
        )
        assert_bit_identical(loop, sweep[0])
        assert sweep[0].max_executors == 2

    def test_shared_pool_source_falls_back_and_matches_loop(self, cluster):
        graph = chain(widths=(96, 48, 8), task_seconds=1.0)
        counts = [8, 32, 48]

        def pooled_results(runner):
            arbiter = CapacityArbiter(capacity=10)
            share = arbiter.share(query_index=0, app_id=0)
            return runner(share)

        loop = pooled_results(
            lambda share: [
                simulate_query(
                    graph,
                    StaticAllocation(n),
                    cluster,
                    capacity_source=share,
                )
                for n in counts
            ]
        )
        sweep = pooled_results(
            lambda share: simulate_query_sweep(
                graph, counts, cluster, capacity_source=share
            )
        )
        for r, s in zip(loop, sweep):
            assert_bit_identical(r, s)
        # the pool really constrained the fleet below the asked-for counts
        assert sweep[-1].max_executors <= 10

"""Unit tests for query telemetry records."""

import pytest

from repro.engine.metrics import QueryTelemetry
from repro.engine.plan import InputSource, LogicalPlan, OperatorKind, PlanNode
from repro.engine.skyline import Skyline


def tiny_plan() -> LogicalPlan:
    return LogicalPlan(
        root=PlanNode(
            kind=OperatorKind.SCAN, source=InputSource("t", 1e6, 1e3)
        ),
        query_id="q1",
    )


class TestQueryTelemetry:
    def test_roundtrip_fields(self):
        sky = Skyline()
        sky.record(0.0, 4)
        row = QueryTelemetry(
            query_id="q1",
            plan=tiny_plan(),
            runtime=12.5,
            executors_requested=4,
            max_executors=4,
            auc=50.0,
            skyline=sky,
            annotations={"policy": "SA(4)"},
        )
        assert row.query_id == "q1"
        assert row.annotations["policy"] == "SA(4)"
        assert row.cores_per_executor == 4

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            QueryTelemetry(
                query_id="q1", plan=tiny_plan(), runtime=-1.0,
                executors_requested=1, max_executors=1, auc=0.0,
            )

    def test_rejects_negative_auc(self):
        with pytest.raises(ValueError):
            QueryTelemetry(
                query_id="q1", plan=tiny_plan(), runtime=1.0,
                executors_requested=1, max_executors=1, auc=-5.0,
            )

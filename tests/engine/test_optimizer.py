"""Unit tests for the rule-based optimizer and its extension point."""

import pytest

from repro.engine.optimizer import Optimizer, OptimizerContext
from repro.engine.plan import InputSource, LogicalPlan, OperatorKind, PlanNode


def scan(rows=1e6, nbytes=1e9) -> PlanNode:
    return PlanNode(
        kind=OperatorKind.SCAN, source=InputSource("t", nbytes, rows)
    )


def count(plan: LogicalPlan, kind: OperatorKind) -> int:
    return plan.operator_counts()[kind]


class TestRewriteRules:
    def test_noop_filter_removed(self):
        node = PlanNode(
            kind=OperatorKind.FILTER,
            children=[scan()],
            selectivity=1.0,
            rows_out=1e6,
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[node], rows_out=10
        ))
        out = Optimizer().optimize(plan).plan
        assert count(out, OperatorKind.FILTER) == 0

    def test_selective_filter_kept_unless_pushable(self):
        node = PlanNode(
            kind=OperatorKind.FILTER,
            children=[
                PlanNode(kind=OperatorKind.EXPAND, children=[scan()], rows_out=2e6)
            ],
            selectivity=0.1,
            pushable=False,
            rows_out=2e5,
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[node], rows_out=10
        ))
        out = Optimizer().optimize(plan).plan
        assert count(out, OperatorKind.FILTER) == 1

    def test_pushable_filter_folds_into_scan(self):
        node = PlanNode(
            kind=OperatorKind.FILTER,
            children=[scan(rows=1e6)],
            selectivity=0.25,
            pushable=True,
            rows_out=2.5e5,
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[node], rows_out=10
        ))
        out = Optimizer().optimize(plan).plan
        assert count(out, OperatorKind.FILTER) == 0
        scans = [n for n in out.walk() if n.kind == OperatorKind.SCAN]
        assert scans[0].rows_out == pytest.approx(2.5e5)

    def test_adjacent_projects_collapse(self):
        inner = PlanNode(
            kind=OperatorKind.PROJECT, children=[scan()], columns_kept=0.5,
            rows_out=1e6,
        )
        outer = PlanNode(
            kind=OperatorKind.PROJECT, children=[inner], columns_kept=0.5,
            rows_out=1e6,
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[outer], rows_out=1
        ))
        out = Optimizer().optimize(plan).plan
        assert count(out, OperatorKind.PROJECT) == 1

    def test_project_prunes_scan_bytes(self):
        proj = PlanNode(
            kind=OperatorKind.PROJECT,
            children=[scan(nbytes=8e9)],
            columns_kept=0.25,
            rows_out=1e6,
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[proj], rows_out=1
        ))
        out = Optimizer().optimize(plan).plan
        assert out.total_input_bytes() == pytest.approx(2e9)

    def test_nested_unions_flatten(self):
        inner = PlanNode(
            kind=OperatorKind.UNION, children=[scan(), scan()], rows_out=2e6
        )
        outer = PlanNode(
            kind=OperatorKind.UNION, children=[inner, scan()], rows_out=3e6
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[outer], rows_out=1
        ))
        out = Optimizer().optimize(plan).plan
        assert count(out, OperatorKind.UNION) == 1
        union = [n for n in out.walk() if n.kind == OperatorKind.UNION][0]
        assert len(union.children) == 3

    def test_input_plan_not_mutated(self):
        node = PlanNode(
            kind=OperatorKind.FILTER, children=[scan()], selectivity=1.0,
            rows_out=1e6,
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[node], rows_out=1
        ))
        Optimizer().optimize(plan)
        assert count(plan, OperatorKind.FILTER) == 1

    def test_reaches_fixpoint_with_stacked_rewrites(self):
        # project over project over pushable filter over scan: several
        # rules must fire across iterations.
        node = scan(rows=1e6, nbytes=4e9)
        node = PlanNode(
            kind=OperatorKind.FILTER, children=[node], selectivity=0.5,
            pushable=True, rows_out=5e5,
        )
        node = PlanNode(
            kind=OperatorKind.PROJECT, children=[node], columns_kept=0.5,
            rows_out=5e5,
        )
        node = PlanNode(
            kind=OperatorKind.PROJECT, children=[node], columns_kept=0.5,
            rows_out=5e5,
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[node], rows_out=1
        ))
        out = Optimizer().optimize(plan).plan
        assert count(out, OperatorKind.FILTER) == 0
        assert count(out, OperatorKind.PROJECT) == 1
        assert out.total_input_bytes() == pytest.approx(1e9)


class TestExtensionPoint:
    def test_extension_rule_sees_optimized_plan(self):
        seen = {}

        class Probe:
            def apply(self, context: OptimizerContext) -> None:
                seen["filters"] = context.plan.operator_counts()[
                    OperatorKind.FILTER
                ]

        node = PlanNode(
            kind=OperatorKind.FILTER, children=[scan()], selectivity=1.0,
            rows_out=1e6,
        )
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[node], rows_out=1
        ))
        opt = Optimizer()
        opt.inject_rule(Probe())
        opt.optimize(plan)
        assert seen["filters"] == 0  # rewrites ran first

    def test_resource_request_recorded(self):
        class Requester:
            def apply(self, context: OptimizerContext) -> None:
                context.request_executors(17)

        opt = Optimizer(extension_rules=[Requester()])
        plan = LogicalPlan(root=PlanNode(
            kind=OperatorKind.AGGREGATE, children=[scan()], rows_out=1
        ))
        context = opt.optimize(plan)
        assert context.requested_executors == 17

    def test_request_validates_count(self):
        context = OptimizerContext(plan=LogicalPlan(root=scan()))
        with pytest.raises(ValueError):
            context.request_executors(0)

    def test_rules_run_in_order(self):
        order = []

        class R:
            def __init__(self, tag):
                self.tag = tag

            def apply(self, context):
                order.append(self.tag)

        opt = Optimizer(extension_rules=[R("a"), R("b")])
        opt.inject_rule(R("c"))
        opt.optimize(LogicalPlan(root=scan()))
        assert order == ["a", "b", "c"]

    def test_max_iterations_validated(self):
        with pytest.raises(ValueError):
            Optimizer(max_iterations=0)

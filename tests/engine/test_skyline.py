"""Unit tests for executor skylines and AUC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.skyline import Skyline


def linear_value_at(points, time):
    """Reference implementation: the pre-bisect linear scan."""
    count = 0
    for t, c in points:
        if t > time:
            break
        count = c
    return count


def linear_auc(points, end_time):
    """Reference implementation: the pre-index full rescan."""
    area = 0.0
    for i, (t, c) in enumerate(points):
        if t >= end_time:
            break
        t_next = points[i + 1][0] if i + 1 < len(points) else end_time
        area += c * (min(t_next, end_time) - t)
    return area


class TestRecord:
    def test_collapses_equal_counts(self):
        s = Skyline()
        s.record(0.0, 5)
        s.record(1.0, 5)
        assert s.points == [(0.0, 5)]

    def test_same_time_overwrites(self):
        s = Skyline()
        s.record(0.0, 5)
        s.record(0.0, 7)
        assert s.points == [(0.0, 7)]

    def test_rejects_time_regression(self):
        s = Skyline()
        s.record(2.0, 1)
        with pytest.raises(ValueError, match="non-decreasing"):
            s.record(1.0, 2)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            Skyline().record(0.0, -1)


class TestQueries:
    def make(self):
        s = Skyline()
        s.record(0.0, 2)
        s.record(10.0, 6)
        s.record(20.0, 1)
        return s

    def test_value_at(self):
        s = self.make()
        assert s.value_at(-1.0) == 0
        assert s.value_at(0.0) == 2
        assert s.value_at(9.99) == 2
        assert s.value_at(10.0) == 6
        assert s.value_at(100.0) == 1

    def test_max_executors(self):
        assert self.make().max_executors == 6
        assert Skyline().max_executors == 0

    def test_auc_rectangle_sum(self):
        s = self.make()
        # 2*10 + 6*10 + 1*10 = 90 over [0, 30]
        assert s.auc(30.0) == pytest.approx(90.0)

    def test_auc_truncates_mid_step(self):
        s = self.make()
        assert s.auc(15.0) == pytest.approx(2 * 10 + 6 * 5)

    def test_auc_empty_skyline_zero(self):
        assert Skyline().auc(100.0) == 0.0

    def test_auc_rejects_negative_end(self):
        with pytest.raises(ValueError):
            Skyline().auc(-1.0)

    def test_truncated_copy(self):
        s = self.make()
        t = s.truncated(15.0)
        assert t.points == [(0.0, 2), (10.0, 6)]
        # original untouched
        assert len(s.points) == 3


class TestBisectIndexRegression:
    """The breakpoint index must survive interleaved records and queries.

    ``record`` calls arriving *after* queries built the bisect index (the
    fleet's pool skyline interleaves grants with AUC reads constantly)
    must invalidate it, and out-of-order records must fail without
    corrupting either the points or the index.
    """

    def test_record_after_query_refreshes_index(self):
        s = Skyline()
        s.record(0.0, 2)
        assert s.auc(10.0) == pytest.approx(20.0)  # index built here
        assert s.value_at(5.0) == 2
        s.record(10.0, 6)  # out-of-band w.r.t. the built index
        assert s.value_at(12.0) == 6
        assert s.auc(20.0) == pytest.approx(2 * 10 + 6 * 10)

    def test_out_of_order_record_raises_and_preserves_state(self):
        s = Skyline()
        s.record(0.0, 2)
        s.record(10.0, 6)
        before = s.auc(30.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            s.record(5.0, 4)  # out-of-order: must not land
        assert s.points == [(0.0, 2), (10.0, 6)]
        assert s.auc(30.0) == before
        assert s.value_at(7.0) == 2

    def test_same_time_rewrite_updates_queries(self):
        s = Skyline()
        s.record(0.0, 3)
        assert s.value_at(0.0) == 3
        s.record(0.0, 9)  # in-order overwrite of the live step
        assert s.value_at(0.0) == 9
        assert s.auc(2.0) == pytest.approx(18.0)


class TestAucBatch:
    def make(self):
        s = Skyline()
        s.record(0.0, 2)
        s.record(10.0, 6)
        s.record(20.0, 1)
        return s

    def test_matches_scalar_auc_exactly(self):
        s = self.make()
        ends = np.array([0.0, 0.5, 10.0, 15.0, 20.0, 99.0])
        batch = s.auc_batch(ends)
        assert batch.shape == ends.shape
        for end, area in zip(ends, batch):
            assert area == s.auc(float(end))

    def test_before_first_step_is_zero(self):
        s = Skyline()
        s.record(5.0, 3)
        assert s.auc_batch([0.0, 4.9]).tolist() == [0.0, 0.0]

    def test_empty_skyline_all_zero(self):
        assert Skyline().auc_batch([0.0, 10.0]).tolist() == [0.0, 0.0]

    def test_rejects_negative_end(self):
        with pytest.raises(ValueError):
            self.make().auc_batch([5.0, -1.0])


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=0, max_value=48),
        ),
        min_size=1,
        max_size=20,
    ),
    st.floats(min_value=0.0, max_value=120.0),
)
def test_property_bisect_matches_linear_reference(steps, probe):
    steps = sorted(steps, key=lambda p: p[0])
    s = Skyline()
    for t, c in steps:
        s.record(t, c)
    assert s.value_at(probe) == linear_value_at(s.points, probe)
    assert s.auc(probe) == linear_auc(s.points, probe)
    assert s.auc_batch([probe, probe + 1.0])[0] == s.auc(probe)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=0, max_value=48),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_auc_bounded_by_peak_times_duration(steps):
    steps = sorted(steps, key=lambda p: p[0])
    s = Skyline()
    for t, c in steps:
        s.record(t, c)
    end = 120.0
    auc = s.auc(end)
    assert 0.0 <= auc <= s.max_executors * end + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=10),
    st.floats(min_value=1.0, max_value=50.0),
)
def test_property_auc_monotone_in_end_time(counts, end):
    s = Skyline()
    for i, c in enumerate(counts):
        s.record(float(i), c)
    assert s.auc(end) <= s.auc(end + 5.0) + 1e-9

"""Unit tests for multi-query Spark applications (Figure 7 behaviour)."""

import pytest

from repro.core.autoexecutor import AutoExecutorRule
from repro.core.ppm import AmdahlPPM
from repro.engine.cluster import Cluster
from repro.engine.optimizer import Optimizer
from repro.engine.session import SparkApplication
from repro.workloads.tpcds import build_query


class _FixedScorer:
    """Stand-in model: the same Amdahl PPM for every query."""

    def __init__(self, s=10.0, p=400.0):
        self.ppm = AmdahlPPM(s=s, p=p)

    def predict_ppm(self, features):
        return self.ppm


@pytest.fixture()
def app():
    return SparkApplication(cluster=Cluster(), default_executors=2)


@pytest.fixture()
def predictive_app():
    optimizer = Optimizer()
    optimizer.inject_rule(AutoExecutorRule(model_loader=_FixedScorer))
    return SparkApplication(
        cluster=Cluster(), optimizer=optimizer, default_executors=2,
        idle_timeout=30.0,
    )


class TestStaticApplication:
    def test_runs_query_and_records_telemetry(self, app):
        plan = build_query("q3", scale_factor=1)
        row = app.run_query(plan)
        assert row.query_id == "q3"
        assert row.runtime > 0
        assert row.executors_requested == 2
        assert len(app.telemetry) == 1

    def test_clock_advances_by_runtime(self, app):
        plan = build_query("q3", scale_factor=1)
        row = app.run_query(plan)
        assert app.clock == pytest.approx(row.runtime)

    def test_idle_advances_clock(self, app):
        app.idle(10.0)
        assert app.clock == 10.0

    def test_idle_rejects_negative(self, app):
        with pytest.raises(ValueError):
            app.idle(-1.0)


class TestPredictiveApplication:
    def test_rule_request_drives_allocation(self, predictive_app):
        plan = build_query("q7", scale_factor=1)
        row = predictive_app.run_query(plan)
        assert row.annotations["autoexecutor.executors"] == row.executors_requested
        assert row.executors_requested >= 1

    def test_two_query_session_with_idle_gap(self, predictive_app):
        """The Figure 7 scenario: predict, run, idle-release, predict again."""
        q1 = build_query("q7", scale_factor=1)
        q2 = build_query("q19", scale_factor=1)
        predictive_app.run_query(q1)
        fleet_after_q1 = predictive_app.skyline.value_at(predictive_app.clock)
        predictive_app.idle(60.0)  # longer than the 30 s idle timeout
        fleet_after_idle = predictive_app.skyline.value_at(
            predictive_app.clock - 1.0
        )
        assert fleet_after_idle <= fleet_after_q1
        assert fleet_after_idle == 1
        predictive_app.run_query(q2)
        assert len(predictive_app.telemetry) == 2

    def test_short_gap_keeps_fleet(self, predictive_app):
        q1 = build_query("q7", scale_factor=1)
        predictive_app.run_query(q1)
        before = predictive_app.skyline.value_at(predictive_app.clock)
        predictive_app.idle(5.0)  # below the idle timeout
        after = predictive_app.skyline.value_at(predictive_app.clock)
        assert after == before

    def test_total_occupancy_accumulates(self, predictive_app):
        q1 = build_query("q7", scale_factor=1)
        predictive_app.run_query(q1)
        occ1 = predictive_app.total_occupancy()
        predictive_app.idle(10.0)
        occ2 = predictive_app.total_occupancy()
        assert occ2 > occ1  # idle fleet still occupies executors

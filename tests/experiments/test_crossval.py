"""Unit tests for the cross-validation driver."""

import numpy as np
import pytest

from repro.experiments.crossval import run_cross_validation


@pytest.fixture(scope="module")
def cv(dataset_small, actuals_small):
    return run_cross_validation(
        dataset_small, actuals_small, n_repeats=2, n_splits=3, seed=0
    )


class TestProtocol:
    def test_fold_count(self, cv):
        assert len(cv.folds) == 6  # 2 repeats x 3 splits

    def test_no_test_query_in_train(self, cv):
        """Section 5.1: no test query appears in its training dataset."""
        for fold in cv.folds:
            assert not set(fold.train_ids) & set(fold.test_ids)

    def test_each_repeat_covers_all_queries(self, cv, dataset_small):
        by_repeat = {}
        for fold in cv.folds:
            by_repeat.setdefault(fold.repeat, []).extend(fold.test_ids)
        for ids in by_repeat.values():
            assert sorted(ids) == sorted(dataset_small.query_ids)

    def test_both_families_trained(self, cv):
        for fold in cv.folds:
            assert set(fold.predicted_curves) == {"power_law", "amdahl"}

    def test_curves_cover_all_queries(self, cv, dataset_small):
        fold = cv.folds[0]
        for family in ("power_law", "amdahl"):
            assert set(fold.predicted_curves[family]) == set(
                dataset_small.query_ids
            )

    def test_predicted_curves_monotone(self, cv):
        for fold in cv.folds[:2]:
            for curves in fold.predicted_curves.values():
                for curve in curves.values():
                    assert np.all(np.diff(curve) <= 1e-9)


class TestErrors:
    def test_error_per_fold_shape(self, cv):
        errs = cv.error_at("power_law", 8)
        assert errs.shape == (6,)
        assert np.all(errs >= 0)

    def test_sparklens_errors_available(self, cv):
        assert cv.error_at("sparklens", 16).shape == (6,)

    def test_train_split_errors(self, cv):
        errs = cv.error_at("amdahl", 8, split="train")
        assert np.all(np.isfinite(errs))

    def test_invalid_split_rejected(self, cv):
        with pytest.raises(ValueError, match="split"):
            cv.error_at("amdahl", 8, split="validation")

    def test_mean_error_scalar(self, cv):
        assert isinstance(cv.mean_error_at("power_law", 8), float)

    def test_test_curves_enumeration(self, cv, dataset_small):
        triples = cv.test_curves("power_law")
        # every query appears once per repeat
        assert len(triples) == 2 * len(dataset_small.query_ids)

    def test_deterministic(self, dataset_small, actuals_small):
        a = run_cross_validation(
            dataset_small, actuals_small, n_repeats=1, n_splits=3, seed=5
        )
        b = run_cross_validation(
            dataset_small, actuals_small, n_repeats=1, n_splits=3, seed=5
        )
        assert np.allclose(
            a.error_at("power_law", 8), b.error_at("power_law", 8)
        )

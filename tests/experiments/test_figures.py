"""Unit tests for the figure/table renderers."""

import numpy as np
import pytest

from repro.experiments.figures import (
    cdf_percentiles,
    render_cdf,
    render_series_table,
    sparkline,
)


class TestSeriesTable:
    def test_renders_aligned_rows(self):
        table = render_series_table(
            "n", [1, 3, 8], {"S": np.array([1.0, 2.0, 3.0])}
        )
        lines = table.splitlines()
        assert "S" in lines[0]
        assert len(lines) == 5  # header, rule, 3 rows

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            render_series_table("n", [1, 2], {"S": np.array([1.0])})

    def test_multiple_series_columns(self):
        table = render_series_table(
            "n",
            [1],
            {"A": np.array([1.0]), "B": np.array([2.0])},
        )
        assert "A" in table and "B" in table


class TestCdf:
    def test_percentiles(self):
        pct = cdf_percentiles(np.arange(101))
        assert pct[50] == pytest.approx(50.0)
        assert pct[90] == pytest.approx(90.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_percentiles([])

    def test_render_contains_count(self):
        text = render_cdf("queries", [1, 2, 3])
        assert "n=3" in text
        assert "p50" in text


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_flat_series_uses_lowest_glyph(self):
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(np.linspace(0, 1, 8))
        assert line == "".join(sorted(line))

    def test_empty_gives_empty(self):
        assert sparkline([]) == ""

"""Unit tests for ground-truth collection (the Section 5.1 protocol)."""

import numpy as np
import pytest

from repro.experiments.runtime_data import (
    EVALUATION_N_VALUES,
    collect_actual_runtimes,
    discard_outliers,
    noise_sigma,
)


class TestNoiseModel:
    def test_paper_bounds(self):
        """Run variation: 4.2% at n=1 growing to 6.9% at n=48."""
        assert noise_sigma(1) == pytest.approx(0.042)
        assert noise_sigma(48) == pytest.approx(0.069)

    def test_monotone_in_n(self):
        sigmas = [noise_sigma(n) for n in (1, 3, 8, 16, 32, 48)]
        assert sigmas == sorted(sigmas)

    def test_clamped_outside_range(self):
        assert noise_sigma(0) == noise_sigma(1)
        assert noise_sigma(100) == noise_sigma(48)


class TestOutlierDiscard:
    def test_keeps_clean_samples(self):
        samples = np.array([10.0, 10.5, 9.8, 10.2, 9.9])
        assert discard_outliers(samples).size == 5

    def test_drops_iqr_outlier(self):
        samples = np.array([10.0, 10.1, 9.9, 10.05, 50.0])
        kept = discard_outliers(samples)
        assert 50.0 not in kept
        assert kept.size == 4

    def test_small_samples_untouched(self):
        samples = np.array([1.0, 100.0])
        assert discard_outliers(samples).size == 2

    def test_never_returns_empty(self):
        samples = np.full(6, 5.0)
        assert discard_outliers(samples).size > 0


class TestCollect:
    def test_evaluation_grid_is_papers(self):
        assert EVALUATION_N_VALUES == (1, 3, 8, 16, 32, 48)

    def test_shapes(self, actuals_small, workload_small):
        n_q = len(workload_small)
        assert actuals_small.times.shape == (n_q, 6)
        assert actuals_small.aucs.shape == (n_q, 6)
        assert len(actuals_small.query_ids) == n_q

    def test_times_positive_and_finite(self, actuals_small):
        assert np.all(actuals_small.times > 0)
        assert np.all(np.isfinite(actuals_small.times))

    def test_noise_within_plausible_band(self, actuals_small, workload_small, cluster):
        """Averaged noisy times must stay near the deterministic runtime."""
        from repro.engine.allocation import StaticAllocation
        from repro.engine.scheduler import simulate_query

        qid = actuals_small.query_ids[0]
        graph = workload_small.stage_graph(qid)
        det = simulate_query(graph, StaticAllocation(16), cluster).runtime
        observed = actuals_small.times_by_query(16)[qid]
        assert abs(observed - det) / det < 0.25

    def test_deterministic_given_seed(self, workload_small, cluster):
        a = collect_actual_runtimes(workload_small, cluster, repeats=2, seed=7)
        b = collect_actual_runtimes(workload_small, cluster, repeats=2, seed=7)
        assert np.allclose(a.times, b.times)

    def test_seed_changes_noise(self, workload_small, cluster):
        a = collect_actual_runtimes(workload_small, cluster, repeats=2, seed=1)
        b = collect_actual_runtimes(workload_small, cluster, repeats=2, seed=2)
        assert not np.allclose(a.times, b.times)

    def test_curve_interpolation(self, actuals_small):
        qid = actuals_small.query_ids[0]
        grid = np.arange(1, 49)
        curve = actuals_small.curve(qid, grid)
        assert curve.shape == (48,)
        row = actuals_small.row(qid)
        assert curve[0] == pytest.approx(row[0])
        assert curve[-1] == pytest.approx(row[-1])

    def test_times_by_query_mapping(self, actuals_small):
        mapping = actuals_small.times_by_query(8)
        assert set(mapping) == set(actuals_small.query_ids)

    def test_optimal_executors_in_range(self, actuals_small):
        for qid in actuals_small.query_ids:
            assert 1 <= actuals_small.optimal_executors(qid) <= 48

    def test_rejects_zero_repeats(self, workload_small, cluster):
        with pytest.raises(ValueError):
            collect_actual_runtimes(workload_small, cluster, repeats=0)

    def test_mostly_decreasing_runtime_in_n(self, actuals_small):
        """The price-performance premise: more executors, faster (up to
        noise and coordination overhead at the tail)."""
        t = actuals_small.times
        # n=1 is never meaningfully faster than n=16 (tiny driver-bound
        # queries at SF=5 can tie within noise)
        assert np.mean(t[:, 0] >= t[:, 3] * 0.95) > 0.9

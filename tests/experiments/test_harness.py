"""Unit tests for the caching experiment context."""

import numpy as np
import pytest

from repro.experiments.harness import ExperimentContext, full_protocol


class TestExperimentContext:
    def test_workload_cached_per_scale_factor(self):
        ctx = ExperimentContext()
        assert ctx.workload(5) is ctx.workload(5)
        assert ctx.workload(5) is not ctx.workload(10)

    def test_protocol_sizes_reduced_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_PROTOCOL", raising=False)
        ctx = ExperimentContext()
        assert not full_protocol()
        assert ctx.cv_repeats == 3
        assert ctx.runtime_repeats == 3

    def test_full_protocol_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_PROTOCOL", "1")
        ctx = ExperimentContext()
        assert full_protocol()
        assert ctx.cv_repeats == 10
        assert ctx.runtime_repeats == 5

    def test_grid_is_papers(self):
        ctx = ExperimentContext()
        assert ctx.n_grid[0] == 1 and ctx.n_grid[-1] == 48

    def test_cluster_is_papers_testbed(self):
        ctx = ExperimentContext()
        assert ctx.cluster.cores_per_executor == 4
        assert ctx.cluster.executors_per_node == 2

"""Public API surface checks.

A downstream user depends on the names the package exports and on module
documentation existing; these tests pin that surface.
"""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.ppm",
    "repro.core.features",
    "repro.core.parameter_model",
    "repro.core.selection",
    "repro.core.cores",
    "repro.core.autoexecutor",
    "repro.core.training",
    "repro.core.errors",
    "repro.engine",
    "repro.engine.plan",
    "repro.engine.optimizer",
    "repro.engine.stages",
    "repro.engine.cluster",
    "repro.engine.allocation",
    "repro.engine.execution",
    "repro.engine.faults",
    "repro.engine.scheduler",
    "repro.engine.sweep",
    "repro.engine.skyline",
    "repro.engine.metrics",
    "repro.engine.session",
    "repro.sparklens",
    "repro.sparklens.log",
    "repro.sparklens.simulator",
    "repro.workloads",
    "repro.workloads.tpcds",
    "repro.workloads.generator",
    "repro.workloads.production",
    "repro.ml",
    "repro.ml.tree",
    "repro.ml.forest",
    "repro.ml.linear",
    "repro.ml.model_selection",
    "repro.ml.metrics",
    "repro.ml.importance",
    "repro.export",
    "repro.export.format",
    "repro.export.runtime",
    "repro.fleet",
    "repro.fleet.arrivals",
    "repro.fleet.admission",
    "repro.fleet.engine",
    "repro.fleet.prediction",
    "repro.fleet.metrics",
    "repro.fleet.routing",
    "repro.fleet.cluster",
    "repro.fleet.parallel",
    "repro.serve",
    "repro.serve.protocol",
    "repro.serve.batching",
    "repro.serve.app",
    "repro.serve.server",
    "repro.serve.client",
    "repro.obs",
    "repro.obs.trace",
    "repro.obs.sketch",
    "repro.obs.metrics",
    "repro.obs.analyze",
    "repro.experiments",
    "repro.experiments.runtime_data",
    "repro.experiments.crossval",
    "repro.experiments.harness",
    "repro.experiments.figures",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_top_level_quickstart_names():
    assert repro.__version__
    for name in ("AutoExecutor", "AutoExecutorRule", "PowerLawPPM",
                 "AmdahlPPM", "Workload", "FleetEngine",
                 "PredictionService", "TraceEvent", "RingBufferTracer",
                 "JsonlTracer", "TraceAnalyzer", "QuantileSketch"):
        assert hasattr(repro, name)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES[1:])
def test_public_classes_and_functions_documented(module_name):
    """Every public item defined in the package carries a doc comment."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                assert obj.__doc__, f"{module_name}.{name} is undocumented"

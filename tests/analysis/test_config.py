"""Spec for config loading: defaults, extension semantics, TOML subset."""

import textwrap

import pytest

from repro.analysis.config import (
    AnalysisConfig,
    load_config,
    module_matches,
    parse_toml_subset,
)


class TestModuleMatches:
    def test_wildcard_covers_package_and_submodules(self):
        assert module_matches("repro.engine", ("repro.engine.*",))
        assert module_matches("repro.engine.sweep", ("repro.engine.*",))
        assert not module_matches("repro.fleet.engine", ("repro.engine.*",))

    def test_exact_pattern_is_exact(self):
        assert module_matches("repro.fleet.prediction", ("repro.fleet.prediction",))
        assert not module_matches(
            "repro.fleet.prediction_v2", ("repro.fleet.prediction",)
        )


class TestFromMapping:
    def test_unknown_key_is_a_hard_error(self):
        with pytest.raises(ValueError, match="unknown key"):
            AnalysisConfig.from_mapping({"wall-clock-allowlist": ["x"]})

    def test_allowlists_extend_rather_than_replace(self):
        config = AnalysisConfig.from_mapping(
            {"wall-clock-allow-modules": ["repro.custom.timing"]}
        )
        # The shipped exceptions survive...
        assert "repro.fleet.prediction" in config.wall_clock_allow_modules
        # ...and the local waiver is appended.
        assert "repro.custom.timing" in config.wall_clock_allow_modules

    def test_scopes_replace(self):
        config = AnalysisConfig.from_mapping({"heap-key-modules": ["my.loop"]})
        assert config.heap_key_modules == ("my.loop",)

    def test_string_shorthand_for_single_entry(self):
        config = AnalysisConfig.from_mapping({"emit-helpers": "_emit_event"})
        assert "_emit_event" in config.emit_helpers
        assert "_trace" in config.emit_helpers  # default kept

    def test_non_string_values_are_rejected(self):
        with pytest.raises(ValueError, match="list of strings"):
            AnalysisConfig.from_mapping({"rng-modules": [1, 2]})


class TestTomlSubset:
    def test_tables_scalars_and_lists(self):
        text = textwrap.dedent(
            """
            # a comment
            [tool.repro-analysis]
            taxonomy_module = "src/repro/obs/trace.py"   # trailing comment
            emit-helpers = ["_trace", '_emit']
            flag = true
            count = 3

            [tool.other]
            noise = "ignored # not a comment inside quotes"
            """
        )
        tables = parse_toml_subset(text)
        section = tables["tool.repro-analysis"]
        assert section["taxonomy_module"] == "src/repro/obs/trace.py"
        assert section["emit-helpers"] == ["_trace", "_emit"]
        assert section["flag"] is True
        assert section["count"] == 3
        assert tables["tool.other"]["noise"].endswith("inside quotes")

    def test_multiline_lists(self):
        text = '[t]\nmods = [\n  "a.b",\n  "c.d",\n]\n'
        assert parse_toml_subset(text)["t"]["mods"] == ["a.b", "c.d"]

    def test_unsupported_lines_raise(self):
        with pytest.raises(ValueError, match="unsupported TOML"):
            parse_toml_subset("[t]\nx = { inline = 'table' }\n")


class TestLoadConfig:
    def test_missing_pyproject_gives_defaults(self, tmp_path):
        assert load_config(str(tmp_path)) == AnalysisConfig()

    def test_repo_pyproject_loads(self):
        # The shipped pyproject's [tool.repro-analysis] section (if any)
        # must always be loadable — CI runs exactly this path.
        config = load_config(".")
        assert isinstance(config, AnalysisConfig)

    def test_section_is_read(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-analysis]\nheap-key-modules = ["my.loop"]\n'
        )
        assert load_config(str(tmp_path)).heap_key_modules == ("my.loop",)

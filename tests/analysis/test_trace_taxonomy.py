"""Fixture spec for the ``trace-taxonomy`` rule.

Both directions of the closed-taxonomy contract: no emission outside
``EVENT_KINDS``, and no declared kind without an emit site.
"""

import textwrap

import pytest

from repro.analysis.checkers import TraceTaxonomyChecker
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleContext

MINI_TAXONOMY = textwrap.dedent(
    """
    EVENT_KINDS = frozenset({"query_arrive", "task_assign", "serve_end"})

    RAW_DATA_FIELDS = {
        "task_assign": ("stage", "task", "eid", "duration_s"),
    }
    """
)

KNOWN_BAD = textwrap.dedent(
    """
    def serve(tracer, now):
        tracer.emit(TraceEvent(now, "query_arive", 0, 1))   # typo'd kind
        tracer.emit((now, "task_teleport", 0, 1, None, 3))  # unknown raw kind
    """
)

KNOWN_GOOD = textwrap.dedent(
    """
    class Engine:
        def _trace(self, now, kind, data=None):
            # Forwarding helper: kind is its second argument by the
            # emit_helpers convention.
            self.tracer.emit(
                tuple.__new__(TraceEvent, (now, kind, -1, -1, None, data))
            )

        def serve(self, now):
            self.tracer.emit(TraceEvent(now, "query_arrive", 0, 1))
            self.tracer.emit((now, "task_assign", 0, 1, None, 3, 0, 2, 1.5))
            self._trace(now, "serve_end")
    """
)


@pytest.fixture
def repo_root(tmp_path):
    """A throwaway repo whose taxonomy is the three-kind mini set."""
    trace = tmp_path / "src" / "repro" / "obs" / "trace.py"
    trace.parent.mkdir(parents=True)
    trace.write_text(MINI_TAXONOMY)
    return str(tmp_path)


def run_checker(root, *modules):
    """Run one checker instance over (module_name, source) pairs."""
    checker = TraceTaxonomyChecker(AnalysisConfig(), root)
    findings = []
    for name, source in modules:
        ctx = ModuleContext.build(f"{name.replace('.', '/')}.py", source, name)
        findings.extend(checker.check_module(ctx))
    findings.extend(checker.finalize())
    return checker, findings


class TestTraceTaxonomy:
    def test_flags_known_bad_kinds(self, repo_root):
        _, findings = run_checker(
            repo_root, ("repro.fleet.engine", KNOWN_BAD)
        )
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "query_arive" in messages
        assert "task_teleport" in messages

    def test_passes_known_good_and_censuses_every_shape(self, repo_root):
        checker, findings = run_checker(
            repo_root,
            ("repro.obs.trace", MINI_TAXONOMY),
            ("repro.fleet.engine", KNOWN_GOOD),
        )
        assert findings == []
        # Typed, raw-tuple, and helper emissions all land in the census.
        assert set(checker.census) == {"query_arrive", "task_assign", "serve_end"}

    def test_dead_kind_is_reported_with_its_declaration_line(self, repo_root):
        only_arrive = 'def serve(t, now):\n    t.emit(TraceEvent(now, "query_arrive"))\n'
        _, findings = run_checker(
            repo_root,
            ("repro.obs.trace", MINI_TAXONOMY),
            ("repro.fleet.engine", only_arrive),
        )
        dead = [f for f in findings if "dead trace kind" in f.message]
        assert {f.message.split("'")[1] for f in dead} == {
            "serve_end",
            "task_assign",
        }
        assert all(f.path.endswith("trace.py") for f in dead)
        assert all(f.line > 0 for f in dead)

    def test_dead_kinds_need_the_library_in_the_run(self, repo_root):
        # Linting a lone script must not report the whole taxonomy dead.
        _, findings = run_checker(
            repo_root, ("repro.fleet.engine", KNOWN_GOOD)
        )
        assert [f for f in findings if "dead" in f.message] == []

    def test_raw_fields_must_be_declared_kinds(self, tmp_path):
        trace = tmp_path / "src" / "repro" / "obs" / "trace.py"
        trace.parent.mkdir(parents=True)
        trace.write_text(
            'EVENT_KINDS = frozenset({"a"})\nRAW_DATA_FIELDS = {"b": ("x",)}\n'
        )
        _, findings = run_checker(str(tmp_path))
        assert len(findings) == 1
        assert "RAW_DATA_FIELDS" in findings[0].message

    def test_variable_kind_outside_helpers_is_unverifiable(self, repo_root):
        src = "def serve(t, now, k):\n    t.emit(TraceEvent(now, k))\n"
        _, findings = run_checker(repo_root, ("repro.fleet.engine", src))
        assert len(findings) == 1
        assert "not a string literal" in findings[0].message

    def test_variable_kind_inside_declared_helper_is_legal(self, repo_root):
        src = (
            "def _trace(self, now, kind):\n"
            "    self.tracer.emit(TraceEvent(now, kind))\n"
        )
        _, findings = run_checker(repo_root, ("repro.fleet.engine", src))
        assert findings == []

    def test_missing_taxonomy_file_makes_the_rule_inert(self, tmp_path):
        _, findings = run_checker(
            str(tmp_path), ("repro.fleet.engine", KNOWN_BAD)
        )
        assert findings == []

"""Fixture spec for the ``heap-key`` rule.

Serve-loop heaps push ``(time, class-rank, counter, ...)`` so that
same-instant ties break by event class then insertion order — never by
whatever payload happens to sit in the tuple.
"""

import textwrap

from repro.analysis.checkers import HeapKeyChecker

KNOWN_BAD = textwrap.dedent(
    """
    import heapq

    def schedule(events, finish, runtime):
        heapq.heappush(events, finish)                  # raw float key
        heapq.heappush(events, (finish, runtime))       # float tiebreak
        heapq.heappush(events, (finish, 0))             # rank, no counter
        heapq.heappush(events, (finish, 1, 2.5, "t"))   # float counter
    """
)

KNOWN_GOOD = textwrap.dedent(
    """
    import heapq
    import itertools

    def schedule(events, now, pos, arrival):
        counter = itertools.count()
        # Two-class form: arrivals at class 0 keyed by stream position...
        heapq.heappush(events, (now, 0, pos, "arrive", pos, arrival))
        # ...everything else at class 1 keyed by the push counter.
        heapq.heappush(events, (now, 1, next(counter), "tick", -1, None))
        # Single-class degenerate form (the per-query scheduler).
        heapq.heappush(events, (now, next(counter), "task_done", None))
    """
)


class TestHeapKeys:
    def test_flags_known_bad(self, check_source):
        findings = check_source(HeapKeyChecker, KNOWN_BAD, "repro.fleet.engine")
        assert len(findings) == 4
        assert {f.rule for f in findings} == {"heap-key"}
        assert "bare expression" in findings[0].message

    def test_passes_known_good(self, check_source):
        assert check_source(HeapKeyChecker, KNOWN_GOOD, "repro.fleet.engine") == []

    def test_scope_is_the_three_serve_loop_modules(self, check_source):
        for module in (
            "repro.engine.scheduler",
            "repro.fleet.engine",
            "repro.fleet.cluster",
        ):
            assert check_source(HeapKeyChecker, KNOWN_BAD, module), module
        # The vectorized sweep's wave heap is internal to one function
        # and out of scope by design.
        assert check_source(HeapKeyChecker, KNOWN_BAD, "repro.engine.sweep") == []

    def test_heappop_is_not_a_push(self, check_source):
        src = "import heapq\n\ndef f(h):\n    return heapq.heappop(h)\n"
        assert check_source(HeapKeyChecker, src, "repro.fleet.engine") == []

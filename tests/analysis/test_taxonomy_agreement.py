"""Three-way agreement: ``EVENT_KINDS`` ≡ static census ≡ runtime trace.

The closed taxonomy only means something if all three views of it
coincide: the declared frozenset, the analyzer's static emit-site
census over ``src/``, and what a real traced serve actually emits and
serializes.  A kind any one of them has that another lacks is either a
dead declaration, an invisible emit path, or an undeclared emission —
all bugs.
"""

from pathlib import Path

import pytest

from repro.analysis.checkers.trace_taxonomy import emit_site_census
from repro.engine.faults import FaultPlan
from repro.fleet import (
    AutoscalerConfig,
    FleetConfig,
    PoolSpec,
    ShardedFleet,
    poisson_arrivals,
    static_allocator,
)
from repro.obs import EVENT_KINDS, RAW_DATA_FIELDS, RingBufferTracer, TraceEvent

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def census():
    return emit_site_census([str(REPO_ROOT / "src")], root=str(REPO_ROOT))


class TestStaticAgreement:
    def test_census_and_event_kinds_are_identical(self, census):
        # No kind serializable that the static pass cannot see (a dead
        # declaration), and no emit site the taxonomy does not declare.
        assert set(census) == set(EVENT_KINDS)

    def test_every_kind_has_at_least_one_real_emit_site(self, census):
        for kind, sites in census.items():
            assert sites, f"kind {kind!r} censused without sites"
            for path, line in sites:
                assert path.endswith(".py") and line > 0

    def test_raw_hot_path_kinds_are_declared_and_emitted(self, census):
        assert set(RAW_DATA_FIELDS) <= set(EVENT_KINDS)
        assert set(RAW_DATA_FIELDS) <= set(census)


class TestRuntimeAgreement:
    def test_traced_serve_emits_only_declared_kinds(self, workload_small):
        # A busy sharded serve — faults, autoscaling, routing — so the
        # runtime side of the agreement covers as much of the taxonomy
        # as one run can reach.
        arrivals = poisson_arrivals(
            workload_small.query_ids[:6], n_queries=30, rate_qps=1.2, seed=11
        )
        tracer = RingBufferTracer()
        pools = [
            PoolSpec(
                capacity=10,
                autoscaler=AutoscalerConfig(min_capacity=10, max_capacity=16),
            ),
            PoolSpec(capacity=10),
        ]
        fleet = ShardedFleet(
            workload_small,
            pools,
            static_allocator(4),
            config=FleetConfig(
                faults=FaultPlan(seed=3, crash_rate=1 / 600.0)
            ),
            tracer=tracer,
        )
        fleet.serve(arrivals)
        runtime_kinds = set(tracer.counts())
        assert runtime_kinds <= EVENT_KINDS
        # The serve is rich enough to hit the lifecycle spine at least.
        assert {
            "serve_begin",
            "query_arrive",
            "query_route",
            "query_admit",
            "task_assign",
            "query_finish",
            "serve_end",
        } <= runtime_kinds

    def test_serialization_round_trips_every_declared_kind(self):
        for kind in sorted(EVENT_KINDS):
            event = TraceEvent(1.5, kind, 0, 2, "q1", {"x": 1})
            assert TraceEvent.from_json(event.to_json()) == event

"""Fixture machinery for the analyzer's self-tests.

Every checker test follows the same shape: a known-bad snippet that MUST
be flagged and a known-good one that MUST pass, run through the
``check_source`` fixture under a module name inside the rule's scope.
The snippets are the executable spec of each contract.
"""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleContext


@pytest.fixture
def check_source():
    """Run one checker class over inline source; returns its findings."""

    def _check(checker_cls, source, module, config=None, root="."):
        cfg = config if config is not None else AnalysisConfig()
        ctx = ModuleContext.build(f"fixture_{module}.py", source, module)
        checker = checker_cls(cfg, root)
        findings = checker.check_module(ctx)
        findings.extend(checker.finalize())
        return findings

    return _check

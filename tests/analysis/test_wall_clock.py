"""Fixture spec for the ``wall-clock`` rule.

The simulation core may only read the event-loop clock; the
measured-overhead modules are the documented, allowlisted exception.
"""

import textwrap

from repro.analysis.checkers import WallClockChecker

KNOWN_BAD = textwrap.dedent(
    """
    import time
    from datetime import datetime

    def handle_event(now):
        started = time.time()          # host clock inside the core
        stamp = datetime.now()         # ditto
        return started, stamp, now
    """
)

KNOWN_GOOD = textwrap.dedent(
    """
    def handle_event(now, clock):
        # All times flow from the event loop's clock parameter.
        return now + clock.tick_interval
    """
)


class TestWallClock:
    def test_flags_known_bad_in_core(self, check_source):
        findings = check_source(WallClockChecker, KNOWN_BAD, "repro.engine.execution")
        assert len(findings) == 2
        assert {f.rule for f in findings} == {"wall-clock"}
        assert "time.time" in findings[0].message

    def test_passes_known_good(self, check_source):
        assert check_source(WallClockChecker, KNOWN_GOOD, "repro.engine.execution") == []

    def test_measured_overhead_module_is_allowlisted(self, check_source):
        assert check_source(WallClockChecker, KNOWN_BAD, "repro.fleet.prediction") == []
        assert check_source(WallClockChecker, KNOWN_BAD, "repro.export.runtime") == []

    def test_out_of_scope_module_is_ignored(self, check_source):
        # Bench drivers legitimately measure wall time.
        assert check_source(WallClockChecker, KNOWN_BAD, "benchmarks.perf.run_bench") == []

    def test_from_import_alias_is_resolved(self, check_source):
        src = "from time import perf_counter as pc\n\ndef f():\n    return pc()\n"
        findings = check_source(WallClockChecker, src, "repro.fleet.engine")
        assert len(findings) == 1
        assert "time.perf_counter" in findings[0].message

    def test_inline_suppression_waives_the_line(self, check_source):
        src = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro-analysis: ignore[wall-clock]\n"
        )
        assert check_source(WallClockChecker, src, "repro.engine.execution") == []

    def test_suppression_for_other_rule_does_not_waive(self, check_source):
        src = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro-analysis: ignore[heap-key]\n"
        )
        assert len(check_source(WallClockChecker, src, "repro.engine.execution")) == 1

    def test_local_variable_named_time_is_not_flagged(self, check_source):
        # Conservative resolution: only import aliases are judged.
        src = "def f(time):\n    return time.time()\n"
        assert check_source(WallClockChecker, src, "repro.engine.execution") == []

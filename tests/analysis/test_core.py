"""Unit spec for the visitor core: maps, resolution, suppressions."""

import ast
import textwrap

from repro.analysis.core import ModuleContext, module_name_for

SOURCE = textwrap.dedent(
    """
    import time
    import numpy as np
    from numpy.random import default_rng as make_rng

    class Outer:
        def method(self):
            def inner():
                return np.random.default_rng(0)
            return inner
    """
)


class TestModuleNameFor:
    def test_src_layout_root_is_stripped(self):
        assert module_name_for("src/repro/fleet/engine.py") == "repro.fleet.engine"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_non_src_trees_keep_their_prefix(self):
        assert (
            module_name_for("benchmarks/perf/run_bench.py")
            == "benchmarks.perf.run_bench"
        )


class TestResolution:
    def test_aliases_resolve_through_the_import_table(self):
        ctx = ModuleContext.build("m.py", SOURCE, "m")
        assert ctx.imports["np"] == "numpy"
        assert ctx.imports["time"] == "time"
        assert ctx.imports["make_rng"] == "numpy.random.default_rng"

    def test_attribute_chains_resolve_fully(self):
        ctx = ModuleContext.build("m.py", SOURCE, "m")
        call = next(
            node
            for node in ctx.walk()
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        )
        assert ctx.resolve(call.func) == "numpy.random.default_rng"

    def test_locals_do_not_resolve(self):
        ctx = ModuleContext.build("m.py", "def f(x):\n    return x.time()\n", "m")
        call = next(node for node in ctx.walk() if isinstance(node, ast.Call))
        assert ctx.resolve(call.func) is None

    def test_scope_of_names_the_def_chain(self):
        ctx = ModuleContext.build("m.py", SOURCE, "m")
        call = next(node for node in ctx.walk() if isinstance(node, ast.Call))
        assert ctx.scope_of(call) == "Outer.method.inner"

    def test_module_level_scope(self):
        ctx = ModuleContext.build("m.py", "x = int('3')\n", "m")
        call = next(node for node in ctx.walk() if isinstance(node, ast.Call))
        assert ctx.scope_of(call) == "<module>"


class TestSuppressions:
    def test_bare_ignore_waives_every_rule(self):
        ctx = ModuleContext.build(
            "m.py", "x = 1  # repro-analysis: ignore\n", "m"
        )
        assert ctx.is_suppressed("wall-clock", 1)
        assert ctx.is_suppressed("heap-key", 1)

    def test_named_ignore_waives_only_those_rules(self):
        ctx = ModuleContext.build(
            "m.py", "x = 1  # repro-analysis: ignore[heap-key, set-iteration]\n", "m"
        )
        assert ctx.is_suppressed("heap-key", 1)
        assert ctx.is_suppressed("set-iteration", 1)
        assert not ctx.is_suppressed("wall-clock", 1)

    def test_string_literals_cannot_suppress(self):
        # The marker lives in a string, not a comment: tokenization must
        # not treat it as a waiver.
        ctx = ModuleContext.build(
            "m.py", 'x = "# repro-analysis: ignore"\n', "m"
        )
        assert not ctx.is_suppressed("wall-clock", 1)

    def test_other_lines_are_untouched(self):
        ctx = ModuleContext.build(
            "m.py", "x = 1\ny = 2  # repro-analysis: ignore\n", "m"
        )
        assert not ctx.is_suppressed("wall-clock", 1)
        assert ctx.is_suppressed("wall-clock", 2)

"""End-to-end spec for the CLI — including the acceptance gate that the
shipped tree itself is clean."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def bad_repo(tmp_path):
    """A repo with one violation of each locally-checkable rule."""
    pkg = tmp_path / "src" / "repro" / "engine"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "obs").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "obs" / "trace.py").write_text(
        'EVENT_KINDS = frozenset({"tick"})\nRAW_DATA_FIELDS = {}\n'
    )
    (pkg / "execution.py").write_text(
        textwrap.dedent(
            """
            import time
            import heapq

            def handle(events, finish):
                now = time.time()
                heapq.heappush(events, finish)
                for x in {1, 2}:
                    now += x
                return now
            """
        )
    )
    return tmp_path


class TestMain:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().err

    def test_findings_exit_one_with_clickable_lines(self, bad_repo, capsys):
        code = main([str(bad_repo / "src"), "--root", str(bad_repo)])
        assert code == 1
        out = capsys.readouterr().out
        assert "[wall-clock]" in out
        assert "[set-iteration]" in out
        assert "execution.py:6" in out  # path:line:col format

    def test_heap_key_scope_applies_in_tmp_repo(self, bad_repo, capsys):
        # engine/execution.py is not a heap-key module; the raw-float
        # push there must NOT be flagged (scope discipline end to end).
        main([str(bad_repo / "src"), "--root", str(bad_repo)])
        assert "[heap-key]" not in capsys.readouterr().out

    def test_json_format(self, bad_repo, capsys):
        code = main(
            [str(bad_repo / "src"), "--root", str(bad_repo), "--format=json"]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == len(report["findings"]) > 0
        assert "wall-clock" in report["rules"]
        first = report["findings"][0]
        assert {"rule", "path", "line", "col", "message"} <= set(first)

    def test_select_narrows_the_run(self, bad_repo, capsys):
        code = main(
            [
                str(bad_repo / "src"),
                "--root",
                str(bad_repo),
                "--select",
                "set-iteration",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "[set-iteration]" in out
        assert "[wall-clock]" not in out

    def test_unknown_select_is_usage_error(self, capsys):
        assert main(["--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "wall-clock",
            "unseeded-rng",
            "heap-key",
            "trace-taxonomy",
            "set-iteration",
            "unbounded-growth",
        ):
            assert rule in out

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        code = main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 1
        assert "[parse-error]" in capsys.readouterr().out


class TestShippedTreeIsClean:
    def test_src_benchmarks_examples_have_no_findings(self):
        # The acceptance criterion, run in-process: the analyzer ships
        # green on its own tree.
        root = str(REPO_ROOT)
        findings = run_analysis(
            [str(REPO_ROOT / d) for d in ("src", "benchmarks", "examples")],
            root=root,
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_module_entrypoint_exits_zero(self):
        # Once per suite, prove the real invocation CI uses.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            capture_output=True,
            text=True,
            check=False,
            cwd=str(REPO_ROOT),
            env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

"""Fixture spec for the ``set-iteration`` rule.

Hash order must never feed float accumulation or event scheduling in
the engine/fleet core; ``sorted(...)`` is the documented fix.
"""

import textwrap

from repro.analysis.checkers import SetIterationChecker

KNOWN_BAD = textwrap.dedent(
    """
    def drain(core, failed, alive):
        total = 0.0
        for eid in {e for e in failed}:        # set comprehension
            total += core.wasted[eid]
        for eid in failed | {0}:               # set algebra w/ set operand
            core.kill(eid)
        return [core.cost(e) for e in set(alive)]   # set() call
    """
)

KNOWN_GOOD = textwrap.dedent(
    """
    def drain(core, failed, alive):
        total = 0.0
        for eid in sorted(failed):             # normalized order
            total += core.wasted[eid]
        if 3 in failed:                        # membership is fine
            core.kill(3)
        return [core.cost(e) for e in sorted(set(alive))]
    """
)


class TestSetIteration:
    def test_flags_known_bad(self, check_source):
        findings = check_source(SetIterationChecker, KNOWN_BAD, "repro.engine.execution")
        assert len(findings) == 3
        assert {f.rule for f in findings} == {"set-iteration"}
        assert "sorted(" in findings[0].message

    def test_passes_known_good(self, check_source):
        assert (
            check_source(SetIterationChecker, KNOWN_GOOD, "repro.engine.execution")
            == []
        )

    def test_set_algebra_needs_a_set_operand_to_flag(self, check_source):
        # `a | b` over unknown names could be ints or dicts; only flag
        # when one side is syntactically a set.
        src = "def f(a, b):\n    for x in a | b:\n        pass\n"
        assert check_source(SetIterationChecker, src, "repro.fleet.engine") == []

    def test_out_of_scope_module_is_ignored(self, check_source):
        assert check_source(SetIterationChecker, KNOWN_BAD, "repro.ml.tree") == []

    def test_dict_and_list_iteration_is_fine(self, check_source):
        src = textwrap.dedent(
            """
            def f(d, xs):
                for k in d:
                    pass
                for v in d.values():
                    pass
                for x in xs:
                    pass
            """
        )
        assert check_source(SetIterationChecker, src, "repro.fleet.engine") == []

"""Fixture spec for the ``unseeded-rng`` rule.

Randomness flows from explicit seeds threaded in as parameters —
``(seed, stream position, entity id)`` via ``SeedSequence`` — never from
interpreter-global RNG state.
"""

import textwrap

from repro.analysis.checkers import SeededRngChecker

KNOWN_BAD = textwrap.dedent(
    """
    import random
    import numpy as np

    def jitter(values):
        random.shuffle(values)            # stdlib global state
        noise = np.random.normal(0, 1)    # legacy numpy global state
        rng = np.random.default_rng()     # OS entropy, unreproducible
        return values, noise, rng
    """
)

KNOWN_GOOD = textwrap.dedent(
    """
    import numpy as np

    def jitter(values, seed, position, entity):
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(position, entity))
        )
        return rng.permutation(values), rng.normal(0, 1)
    """
)


class TestSeededRng:
    def test_flags_known_bad(self, check_source):
        findings = check_source(SeededRngChecker, KNOWN_BAD, "repro.engine.faults")
        assert len(findings) == 3
        assert {f.rule for f in findings} == {"unseeded-rng"}
        messages = " ".join(f.message for f in findings)
        assert "random.shuffle" in messages
        assert "numpy.random.normal" in messages
        assert "without a seed" in messages

    def test_passes_known_good(self, check_source):
        assert check_source(SeededRngChecker, KNOWN_GOOD, "repro.engine.faults") == []

    def test_benchmarks_are_in_scope(self, check_source):
        findings = check_source(
            SeededRngChecker, KNOWN_BAD, "benchmarks.perf.run_fleet_bench"
        )
        assert len(findings) == 3

    def test_seeded_stdlib_random_instance_is_legal(self, check_source):
        src = "import random\nr = random.Random(42)\n"
        assert check_source(SeededRngChecker, src, "repro.workloads.tpcds") == []

    def test_unseeded_stdlib_random_instance_is_flagged(self, check_source):
        src = "import random\nr = random.Random()\n"
        assert len(check_source(SeededRngChecker, src, "repro.workloads.tpcds")) == 1

    def test_np_random_seed_is_flagged(self, check_source):
        src = "import numpy as np\nnp.random.seed(0)\n"
        findings = check_source(SeededRngChecker, src, "repro.ml.forest")
        assert len(findings) == 1

    def test_generator_type_references_are_legal(self, check_source):
        src = textwrap.dedent(
            """
            import numpy as np

            def fit(rng: np.random.Generator, seq: np.random.SeedSequence):
                child = np.random.default_rng(seq.spawn(1)[0])
                return rng, child
            """
        )
        assert check_source(SeededRngChecker, src, "repro.ml.tree") == []

    def test_out_of_scope_module_is_ignored(self, check_source):
        assert check_source(SeededRngChecker, KNOWN_BAD, "scripts.scratch") == []

"""Fixture spec for the ``unbounded-growth`` rule.

Inside the streaming accumulator classes, per-query state must fold
into bounded accumulators — any surviving container growth is the
O(1)-memory contract dying one line at a time.
"""

import textwrap

from repro.analysis.checkers import StreamingRetentionChecker
from repro.analysis.config import AnalysisConfig

KNOWN_BAD = textwrap.dedent(
    """
    class PoolStreamStats:
        def observe(self, record):
            self.seen.append(record)               # unbounded list
            self.ids.add(record.query_id)          # unbounded set
            self.history += [record.latency]       # unbounded via +=
            self.by_pool.setdefault(0, []).append(record)  # nested
    """
)

KNOWN_GOOD = textwrap.dedent(
    """
    class PoolStreamStats:
        def observe(self, record):
            # Exact accumulators and sketch folds only.
            self.n_queries += 1
            self.total_seconds += record.run_seconds
            self.latency.add(record.latency)       # bounded sketch fold
            scratch = []
            scratch.append(record.latency)         # local temporary
    """
)


class TestStreamingRetention:
    def test_flags_known_bad(self, check_source):
        findings = check_source(
            StreamingRetentionChecker, KNOWN_BAD, "repro.fleet.metrics"
        )
        assert len(findings) == 4
        assert {f.rule for f in findings} == {"unbounded-growth"}
        assert "O(1)-memory" in findings[0].message

    def test_passes_known_good(self, check_source):
        assert (
            check_source(StreamingRetentionChecker, KNOWN_GOOD, "repro.fleet.metrics")
            == []
        )

    def test_only_declared_classes_are_in_scope(self, check_source):
        # Same growth in a record-mode class is legal: FleetMetrics
        # holding records IS record mode's contract.
        src = KNOWN_BAD.replace("PoolStreamStats", "FleetMetrics")
        assert check_source(StreamingRetentionChecker, src, "repro.fleet.metrics") == []

    def test_module_must_match_too(self, check_source):
        assert (
            check_source(StreamingRetentionChecker, KNOWN_BAD, "repro.engine.metrics")
            == []
        )

    def test_bounded_attr_allowlist_extends(self, check_source):
        config = AnalysisConfig.from_mapping(
            {"streaming-bounded-attrs": ["seen", "ids", "history", "by_pool"]}
        )
        assert (
            check_source(
                StreamingRetentionChecker,
                KNOWN_BAD,
                "repro.fleet.metrics",
                config=config,
            )
            == []
        )

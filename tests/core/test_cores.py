"""Unit tests for total-cores modeling and executor factorization."""

import pytest

from repro.core.cores import CONFIG_GRID_TABLE1, Factorization, factorize_cores
from repro.engine.cluster import NodeSpec


class TestTable1Grid:
    def test_thirteen_configurations(self):
        assert len(CONFIG_GRID_TABLE1) == 13

    def test_k_equals_n_times_ec(self):
        for ec, n, k in CONFIG_GRID_TABLE1:
            assert k == n * ec

    def test_ec4_series_covers_paper_range(self):
        ec4 = [(n, k) for ec, n, k in CONFIG_GRID_TABLE1 if ec == 4]
        assert (1, 4) in ec4 and (48, 192) in ec4


class TestFactorizeCores:
    def test_paper_testbed_prefers_ec4(self):
        """8-core/64 GB nodes with 28 GB executors: ec=4 strands nothing
        (2 executors x 4 cores) while memory only fits 2 executors."""
        result = factorize_cores(32)
        assert result.cores_per_executor == 4
        assert result.executors == 8
        assert result.stranded_cores_per_node == 0

    def test_k_must_split_into_whole_executors(self):
        result = factorize_cores(12)
        assert result.total_cores == 12

    def test_memory_constrains_small_executors(self):
        # 1-core executors: memory fits only 2 per node -> 6 cores stranded
        result = factorize_cores(8, node=NodeSpec(cores=8, memory_gb=64))
        assert result.cores_per_executor == 4

    def test_tie_break_prefers_smaller_ec(self):
        # plentiful memory: ec in {1,2,4,8} all strand 0 -> pick ec=1
        result = factorize_cores(
            8, node=NodeSpec(cores=8, memory_gb=1024), executor_memory_gb=1.0
        )
        assert result.cores_per_executor == 1
        assert result.executors == 8

    def test_bounds_respected(self):
        result = factorize_cores(
            32,
            node=NodeSpec(cores=8, memory_gb=1024),
            executor_memory_gb=1.0,
            min_cores_per_executor=2,
            max_cores_per_executor=4,
        )
        assert 2 <= result.cores_per_executor <= 4

    def test_prime_k_falls_back_to_ec1_if_feasible(self):
        result = factorize_cores(
            7, node=NodeSpec(cores=8, memory_gb=1024), executor_memory_gb=1.0
        )
        assert result.cores_per_executor in (1, 7)
        assert result.total_cores == 7

    def test_infeasible_raises(self):
        # executors larger than node memory allows
        with pytest.raises(ValueError, match="no feasible"):
            factorize_cores(4, node=NodeSpec(cores=8, memory_gb=8),
                            executor_memory_gb=28.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            factorize_cores(0)

    def test_invalid_min_rejected(self):
        with pytest.raises(ValueError):
            factorize_cores(4, min_cores_per_executor=0)

    def test_factorization_total(self):
        f = Factorization(executors=6, cores_per_executor=4,
                          stranded_cores_per_node=0)
        assert f.total_cores == 24

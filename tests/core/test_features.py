"""Unit tests for Table 2 featurization."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, QueryFeatures, featurize_plans
from repro.engine.plan import OPERATOR_KINDS
from repro.workloads.tpcds import build_query


class TestFeatureLayout:
    def test_nineteen_features(self):
        """14 operator counts + NumOps, MaxDepth, NumInputs, bytes, rows."""
        assert len(FEATURE_NAMES) == 19

    def test_paper_figure15_names_present(self):
        for name in (
            "TotalInputBytes",
            "TotalRowsProcessed",
            "MaxDepth",
            "NumOps",
            "NumInputs",
            "Project",
            "Filter",
            "Aggregate",
            "Sort",
            "Union",
        ):
            assert name in FEATURE_NAMES

    def test_operator_kinds_lead_the_vector(self):
        assert FEATURE_NAMES[: len(OPERATOR_KINDS)] == tuple(
            k.value for k in OPERATOR_KINDS
        )


class TestFromPlan:
    @pytest.fixture(scope="class")
    def features(self):
        return QueryFeatures.from_plan(build_query("q11", scale_factor=10))

    def test_vector_shape_and_id(self, features):
        assert features.values.shape == (19,)
        assert features.query_id == "q11"

    def test_counts_match_plan(self, features):
        plan = build_query("q11", scale_factor=10)
        counts = plan.operator_counts()
        for kind in OPERATOR_KINDS:
            assert features[kind.value] == counts[kind]

    def test_aggregates_match_plan(self, features):
        plan = build_query("q11", scale_factor=10)
        assert features["NumOps"] == plan.num_operators()
        assert features["MaxDepth"] == plan.max_depth()
        assert features["NumInputs"] == len(plan.input_sources())
        assert features["TotalInputBytes"] == pytest.approx(
            plan.total_input_bytes()
        )
        assert features["TotalRowsProcessed"] == pytest.approx(
            plan.total_rows_processed()
        )

    def test_compile_time_only(self, features):
        """No runtime statistics in the feature list (Section 3.4)."""
        runtime_words = ("time", "runtime", "executor", "duration", "auc")
        for name in FEATURE_NAMES:
            assert not any(w in name.lower() for w in runtime_words)

    def test_getitem_unknown_raises_keyerror(self, features):
        with pytest.raises(KeyError):
            features["NoSuchFeature"]

    def test_masked_projection(self, features):
        subset = features.masked(("TotalInputBytes", "MaxDepth"))
        assert subset.shape == (2,)
        assert subset[0] == features["TotalInputBytes"]
        assert subset[1] == features["MaxDepth"]


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="19"):
            QueryFeatures(values=np.zeros(5))


class TestFeaturizePlans:
    def test_stacks_matrix(self):
        plans = [build_query(q, 10) for q in ("q1", "q2", "q3")]
        X = featurize_plans(plans)
        assert X.shape == (3, 19)
        assert not np.allclose(X[0], X[1])

    def test_scale_factor_moves_only_data_features(self):
        f10 = QueryFeatures.from_plan(build_query("q20", 10))
        f100 = QueryFeatures.from_plan(build_query("q20", 100))
        # structural features identical, data features grow
        for kind in OPERATOR_KINDS:
            assert f10[kind.value] == f100[kind.value]
        assert f100["TotalInputBytes"] > f10["TotalInputBytes"]
        assert f100["TotalRowsProcessed"] > f10["TotalRowsProcessed"]

"""Unit and property tests for the Price-Performance Models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ppm import AmdahlPPM, PowerLawPPM, fit_amdahl, fit_power_law


class TestPowerLawPPM:
    def test_evaluates_equation_3(self):
        ppm = PowerLawPPM(a=-1.0, b=100.0, m=10.0)
        assert ppm.predict(1) == pytest.approx(100.0)
        assert ppm.predict(5) == pytest.approx(20.0)
        assert ppm.predict(20) == pytest.approx(10.0)  # floor

    def test_monotone_constraint_enforced(self):
        with pytest.raises(ValueError, match="monotonicity"):
            PowerLawPPM(a=0.5, b=100.0, m=1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PowerLawPPM(a=-1.0, b=0.0, m=1.0)
        with pytest.raises(ValueError):
            PowerLawPPM(a=-1.0, b=10.0, m=-1.0)

    def test_rejects_n_below_one(self):
        with pytest.raises(ValueError):
            PowerLawPPM(a=-1.0, b=10.0, m=0.0).predict(0.5)

    def test_saturation_n(self):
        ppm = PowerLawPPM(a=-1.0, b=100.0, m=10.0)
        assert ppm.saturation_n() == pytest.approx(10.0)
        assert PowerLawPPM(a=-1.0, b=100.0, m=0.0).saturation_n() == np.inf
        assert PowerLawPPM(a=0.0, b=100.0, m=10.0).saturation_n() == np.inf

    def test_from_parameters_clamps(self):
        ppm = PowerLawPPM.from_parameters(np.array([0.7, -5.0, -2.0]))
        assert ppm.a == 0.0
        assert ppm.b > 0.0
        assert ppm.m == 0.0

    def test_parameters_roundtrip(self):
        ppm = PowerLawPPM(a=-0.5, b=20.0, m=3.0)
        assert np.allclose(ppm.parameters(), [-0.5, 20.0, 3.0])
        assert ppm.PARAM_NAMES == ("a", "b", "m")


class TestAmdahlPPM:
    def test_evaluates_equation_4(self):
        ppm = AmdahlPPM(s=5.0, p=100.0)
        assert ppm.predict(1) == pytest.approx(105.0)
        assert ppm.predict(50) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AmdahlPPM(s=-1.0, p=1.0)
        with pytest.raises(ValueError):
            AmdahlPPM(s=1.0, p=-1.0)

    def test_from_parameters_clamps(self):
        ppm = AmdahlPPM.from_parameters(np.array([-3.0, -4.0]))
        assert ppm.s == 0.0 and ppm.p == 0.0

    def test_strictly_decreasing_when_parallel_work_exists(self):
        curve = AmdahlPPM(s=1.0, p=50.0).predict_curve(np.arange(1, 49))
        assert np.all(np.diff(curve) < 0)


class TestFitPowerLaw:
    def test_recovers_exact_power_law(self):
        n = np.arange(1, 49, dtype=float)
        truth = PowerLawPPM(a=-0.8, b=300.0, m=20.0)  # saturates at n≈30
        fitted = fit_power_law(n, truth.predict_curve(n))
        assert fitted.m == pytest.approx(20.0, rel=1e-6)
        assert fitted.a == pytest.approx(-0.8, abs=0.05)
        assert fitted.b == pytest.approx(300.0, rel=0.1)

    def test_floor_never_undercuts_observed_minimum(self):
        # the power law never reaches its floor inside the grid: the
        # fitted m is the observed minimum, not the latent asymptote
        n = np.arange(1, 49, dtype=float)
        truth = PowerLawPPM(a=-0.8, b=300.0, m=12.0)  # 300*48^-0.8 > 12
        fitted = fit_power_law(n, truth.predict_curve(n))
        assert fitted.m == pytest.approx(truth.predict(48), rel=1e-6)
        assert fitted.a == pytest.approx(-0.8, abs=0.05)

    def test_flat_curve_degenerates_to_constant(self):
        n = np.array([1.0, 2.0, 4.0])
        fitted = fit_power_law(n, np.full(3, 7.0))
        assert fitted.a == 0.0
        assert fitted.predict(1) == pytest.approx(7.0)
        assert fitted.predict(48) == pytest.approx(7.0)

    def test_fit_only_uses_non_saturating_region(self):
        # power law down to n=10, then exactly flat: the flat tail must
        # not flatten the fitted exponent.
        n = np.arange(1, 49, dtype=float)
        t = np.maximum(200.0 * n**-1.0, 20.0)
        fitted = fit_power_law(n, t)
        assert fitted.a < -0.8

    def test_validation(self):
        with pytest.raises(ValueError, match="two"):
            fit_power_law([1.0], [5.0])
        with pytest.raises(ValueError, match=">= 1"):
            fit_power_law([0.5, 2.0], [5.0, 3.0])
        with pytest.raises(ValueError, match="positive"):
            fit_power_law([1.0, 2.0], [5.0, 0.0])
        with pytest.raises(ValueError, match="equal length"):
            fit_power_law([1.0, 2.0], [5.0])


class TestFitAmdahl:
    def test_recovers_exact_amdahl(self):
        n = np.array([1.0, 3.0, 8.0, 16.0, 32.0, 48.0])
        truth = AmdahlPPM(s=9.0, p=250.0)
        fitted = fit_amdahl(n, truth.predict_curve(n))
        assert fitted.s == pytest.approx(9.0, rel=1e-6)
        assert fitted.p == pytest.approx(250.0, rel=1e-6)

    def test_negative_serial_clamped_with_origin_refit(self):
        # data that a plain regression would fit with s < 0
        n = np.array([1.0, 2.0, 48.0])
        t = np.array([100.0, 50.0, 1.0])
        fitted = fit_amdahl(n, t)
        assert fitted.s >= 0.0
        assert fitted.p > 0.0

    def test_increasing_data_degenerates_to_constant(self):
        n = np.array([1.0, 2.0, 4.0, 8.0])
        t = np.array([1.0, 2.0, 4.0, 8.0])  # pathological: slower with more
        fitted = fit_amdahl(n, t)
        assert fitted.p == 0.0
        assert fitted.s == pytest.approx(t.mean())


@settings(max_examples=50, deadline=None)
@given(
    a=st.floats(min_value=-2.0, max_value=0.0),
    b=st.floats(min_value=1.0, max_value=1e4),
    m=st.floats(min_value=0.0, max_value=50.0),
)
def test_property_power_law_monotone_non_increasing(a, b, m):
    ppm = PowerLawPPM(a=a, b=b, m=m)
    curve = ppm.predict_curve(np.arange(1, 49))
    assert np.all(np.diff(curve) <= 1e-12)


@settings(max_examples=50, deadline=None)
@given(
    s=st.floats(min_value=0.0, max_value=100.0),
    p=st.floats(min_value=0.0, max_value=1e4),
)
def test_property_amdahl_monotone_and_bounded_below_by_s(s, p):
    ppm = AmdahlPPM(s=s, p=p)
    curve = ppm.predict_curve(np.arange(1, 49))
    assert np.all(np.diff(curve) <= 1e-12)
    assert np.all(curve >= s - 1e-12)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_property_fits_are_always_monotone_even_on_noisy_data(seed):
    """Section 3.1: the PPM stays monotone regardless of input wiggles."""
    rng = np.random.default_rng(seed)
    n = np.arange(1, 49, dtype=float)
    base = 100.0 / n + 5.0
    noisy = base * rng.lognormal(0.0, 0.2, n.size)
    for fitted in (fit_power_law(n, noisy), fit_amdahl(n, noisy)):
        curve = fitted.predict_curve(n)
        assert np.all(np.diff(curve) <= 1e-9)

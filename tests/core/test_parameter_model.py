"""Unit tests for the parameter model g: features -> PPM parameters."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES
from repro.core.parameter_model import ParameterModel
from repro.core.ppm import AmdahlPPM, PowerLawPPM
from repro.ml.linear import LinearRegression


def synthetic_dataset(n=60, seed=0):
    """Features whose data-size columns determine Amdahl parameters."""
    rng = np.random.default_rng(seed)
    X = np.abs(rng.normal(1.0, 0.3, size=(n, len(FEATURE_NAMES))))
    bytes_col = FEATURE_NAMES.index("TotalInputBytes")
    rows_col = FEATURE_NAMES.index("TotalRowsProcessed")
    X[:, bytes_col] = np.exp(rng.uniform(18, 25, n))
    X[:, rows_col] = np.exp(rng.uniform(15, 22, n))
    s = 2.0 + np.log(X[:, rows_col]) / 4
    p = X[:, bytes_col] / 1e8
    return X, np.column_stack([s, p])


class TestConstruction:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            ParameterModel(family="bogus")

    def test_unknown_feature_names_rejected(self):
        with pytest.raises(ValueError, match="feature names"):
            ParameterModel(family="amdahl", feature_names=("NotAFeature",))

    def test_default_estimator_is_100_tree_forest(self):
        model = ParameterModel(family="power_law")
        assert model.estimator.n_estimators == 100

    def test_param_names_per_family(self):
        assert ParameterModel(family="power_law").param_names == ("a", "b", "m")
        assert ParameterModel(family="amdahl").param_names == ("s", "p")


class TestFitPredict:
    def test_fit_and_predict_ppm_types(self):
        X, Y = synthetic_dataset()
        model = ParameterModel(family="amdahl").fit(X, Y)
        ppm = model.predict_ppm(X[0])
        assert isinstance(ppm, AmdahlPPM)

        pl_targets = np.column_stack([-np.ones(len(X)) * 0.5, Y[:, 1], Y[:, 0]])
        pl = ParameterModel(family="power_law").fit(X, pl_targets)
        assert isinstance(pl.predict_ppm(X[0]), PowerLawPPM)

    def test_predictions_always_valid_monotone_ppms(self):
        X, Y = synthetic_dataset()
        model = ParameterModel(family="amdahl").fit(X, Y)
        grid = np.arange(1, 49)
        for row in X[:10]:
            curve = model.predict_ppm(row).predict_curve(grid)
            assert np.all(np.diff(curve) <= 1e-9)
            assert np.all(curve > 0)

    def test_in_sample_accuracy_reasonable(self):
        X, Y = synthetic_dataset()
        model = ParameterModel(family="amdahl").fit(X, Y)
        pred = model.predict_params(X)
        rel = np.abs(pred - Y) / np.abs(Y)
        assert np.median(rel) < 0.2

    def test_log_space_training_preserves_scale_ordering(self):
        """b spans orders of magnitude; predictions must track rank."""
        X, Y = synthetic_dataset(n=80)
        model = ParameterModel(family="amdahl").fit(X, Y)
        pred = model.predict_params(X)
        rank_corr = np.corrcoef(
            np.argsort(np.argsort(Y[:, 1])), np.argsort(np.argsort(pred[:, 1]))
        )[0, 1]
        assert rank_corr > 0.9

    def test_batch_and_single_prediction_agree(self):
        X, Y = synthetic_dataset()
        model = ParameterModel(family="amdahl").fit(X, Y)
        batch = model.predict_params(X[:3])
        for i in range(3):
            assert np.allclose(model.predict_params(X[i]), batch[i])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            ParameterModel(family="amdahl").predict_params(np.zeros(19))

    def test_wrong_param_width_rejected(self):
        X, Y = synthetic_dataset()
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            ParameterModel(family="power_law").fit(X, Y)  # Y has 2 cols

    def test_row_count_mismatch_rejected(self):
        X, Y = synthetic_dataset()
        with pytest.raises(ValueError, match="row counts"):
            ParameterModel(family="amdahl").fit(X[:-1], Y)


class TestFeatureSubsets:
    """The Section 5.7 ablation interface."""

    def test_subset_projection_from_full_vectors(self):
        X, Y = synthetic_dataset()
        model = ParameterModel(
            family="amdahl",
            feature_names=("TotalInputBytes", "TotalRowsProcessed"),
        ).fit(X, Y)
        ppm = model.predict_ppm(X[0])
        assert isinstance(ppm, AmdahlPPM)

    def test_subset_width_input_accepted(self):
        X, Y = synthetic_dataset()
        cols = [
            FEATURE_NAMES.index("TotalInputBytes"),
            FEATURE_NAMES.index("TotalRowsProcessed"),
        ]
        model = ParameterModel(
            family="amdahl",
            feature_names=("TotalInputBytes", "TotalRowsProcessed"),
        ).fit(X[:, cols], Y)
        assert model.predict_params(X[0, cols]).shape == (2,)

    def test_wrong_width_rejected(self):
        X, Y = synthetic_dataset()
        model = ParameterModel(
            family="amdahl", feature_names=("TotalInputBytes",)
        ).fit(X, Y)
        with pytest.raises(ValueError, match="columns"):
            model.predict_params(np.zeros((1, 7)))


class TestCustomEstimator:
    def test_any_fit_predict_estimator_works(self):
        """Figure 6: 'any ML library' — here, a linear model."""
        X, Y = synthetic_dataset()
        model = ParameterModel(family="amdahl", estimator=LinearRegression())
        model.fit(X, Y)
        ppm = model.predict_ppm(X[0])
        assert ppm.s >= 0 and ppm.p >= 0

"""Unit and property tests for configuration selection objectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ppm import AmdahlPPM, PowerLawPPM
from repro.core.selection import elbow_point, limited_slowdown, min_time_executors

GRID = np.arange(1, 49)


class TestMinTime:
    def test_picks_smallest_argmin(self):
        t = np.array([10.0, 5.0, 5.0, 7.0])
        assert min_time_executors([1, 2, 3, 4], t) == 2

    def test_interior_minimum(self):
        t = np.array([10.0, 4.0, 6.0, 8.0])
        assert min_time_executors([1, 2, 3, 4], t) == 2


class TestLimitedSlowdown:
    def test_h1_on_monotone_curve_selects_saturation_point(self):
        curve = PowerLawPPM(a=-1.0, b=100.0, m=10.0).predict_curve(GRID)
        assert limited_slowdown(GRID, curve, 1.0) == 10

    def test_h1_on_amdahl_selects_max_n(self):
        """Paper Section 5.3: AE_AL always selects n=48 at H=1 because it
        has no saturation."""
        curve = AmdahlPPM(s=5.0, p=200.0).predict_curve(GRID)
        assert limited_slowdown(GRID, curve, 1.0) == 48

    def test_larger_h_smaller_n(self):
        curve = AmdahlPPM(s=5.0, p=200.0).predict_curve(GRID)
        chosen = [limited_slowdown(GRID, curve, h) for h in (1.0, 1.1, 1.5, 2.0)]
        assert chosen == sorted(chosen, reverse=True)
        assert chosen[-1] < chosen[0]

    def test_exact_threshold_arithmetic(self):
        # t = 10 + 90/n; t_min at n=48 is 11.875; H=2 -> threshold 23.75
        # -> smallest n with 10 + 90/n <= 23.75 is n = ceil(90/13.75) = 7
        curve = AmdahlPPM(s=10.0, p=90.0).predict_curve(GRID)
        assert limited_slowdown(GRID, curve, 2.0) == 7

    def test_h_below_one_rejected(self):
        with pytest.raises(ValueError):
            limited_slowdown(GRID, np.ones(48), 0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            limited_slowdown([1], [1.0], 1.0)
        with pytest.raises(ValueError, match="increasing"):
            limited_slowdown([2, 1], [1.0, 2.0], 1.0)
        with pytest.raises(ValueError, match="positive"):
            limited_slowdown([1, 2], [1.0, 0.0], 1.0)


class TestElbowPoint:
    def test_amdahl_elbow_is_7_on_1_to_48(self):
        """Closed form: slope(u(n)) = 48/(n(n-1)) crosses 1 between n=7
        (48/42 >= 1) and n=8 (48/56 <= 1) — the paper observed AE_AL
        always selecting L=7."""
        for s, p in [(0.0, 100.0), (5.0, 1.0), (50.0, 1000.0)]:
            curve = AmdahlPPM(s=s, p=p).predict_curve(GRID)
            assert elbow_point(GRID, curve) == 7

    def test_power_law_elbows_in_paper_range(self):
        """Paper Figure 11: AE_PL selected 8, 9, or 10."""
        for a in (-0.7, -0.9, -1.2):
            curve = PowerLawPPM(a=a, b=200.0, m=0.0).predict_curve(GRID)
            assert 5 <= elbow_point(GRID, curve) <= 12

    def test_flat_curve_falls_back_to_min_time(self):
        assert elbow_point(GRID, np.full(48, 9.0)) == 1

    def test_linear_descent_crosses_at_first_boundary(self):
        # a straight line has normalized slope exactly 1 everywhere; the
        # crossover condition (>= 1 then <= 1) fires at the first pair,
        # i.e. Equation 9 places the elbow at the second grid point
        curve = np.linspace(100.0, 1.0, 48)
        assert elbow_point(GRID, curve) == 2

    def test_steep_then_flat_elbow_at_knee(self):
        # one steep drop then flat: slope 47 then 0 -> elbow right after
        # the drop, per the definition
        curve = np.concatenate([[100.0], np.full(47, 99.0)])
        assert elbow_point(GRID, curve) == 2

    def test_still_steep_at_grid_end_returns_last_point(self):
        # decreasing curve whose drop accelerates: the normalized slope
        # ends above 1 with no crossover, so the elbow is the last point
        curve = 101.0 - 100.0 * ((GRID - 1) / 47.0) ** 4
        assert elbow_point(GRID, curve) == 48

    def test_independent_of_axis_scales(self):
        """Normalization makes the elbow invariant to time units."""
        curve = AmdahlPPM(s=5.0, p=300.0).predict_curve(GRID)
        assert elbow_point(GRID, curve) == elbow_point(GRID, curve * 1000.0)


@settings(max_examples=50, deadline=None)
@given(
    s=st.floats(min_value=0.0, max_value=50.0),
    p=st.floats(min_value=1.0, max_value=5000.0),
    h=st.floats(min_value=1.0, max_value=3.0),
)
def test_property_limited_slowdown_honors_threshold(s, p, h):
    curve = AmdahlPPM(s=s, p=p).predict_curve(GRID)
    n = limited_slowdown(GRID, curve, h)
    assert curve[n - 1] <= curve.min() * h + 1e-9
    if n > 1:  # smallest such n: the previous point violates the threshold
        assert curve[n - 2] > curve.min() * h - 1e-9


@settings(max_examples=50, deadline=None)
@given(
    a=st.floats(min_value=-2.0, max_value=-0.1),
    b=st.floats(min_value=10.0, max_value=5000.0),
    m=st.floats(min_value=0.0, max_value=20.0),
)
def test_property_elbow_always_on_grid(a, b, m):
    curve = PowerLawPPM(a=a, b=b, m=m).predict_curve(GRID)
    assert 1 <= elbow_point(GRID, curve) <= 48

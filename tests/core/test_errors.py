"""Unit tests for error metrics and interpolation helpers."""

import numpy as np
import pytest

from repro.core.errors import e_metric, interpolate_curve, slowdown


class TestEMetric:
    def test_equation_6(self):
        actual = {"q1": 100.0, "q2": 50.0}
        predicted = {"q1": 110.0, "q2": 45.0}
        assert e_metric(actual, predicted) == pytest.approx(15.0 / 150.0)

    def test_zero_for_perfect(self):
        actual = {"q1": 10.0}
        assert e_metric(actual, dict(actual)) == 0.0

    def test_extra_predictions_tolerated(self):
        actual = {"q1": 10.0}
        predicted = {"q1": 12.0, "q2": 99.0}
        assert e_metric(actual, predicted) == pytest.approx(0.2)

    def test_missing_prediction_raises(self):
        with pytest.raises(KeyError, match="q2"):
            e_metric({"q1": 1.0, "q2": 2.0}, {"q1": 1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            e_metric({}, {})

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            e_metric({"q1": 0.0}, {"q1": 1.0})


class TestInterpolateCurve:
    def test_passes_through_samples(self):
        n = [1, 8, 48]
        t = [100.0, 20.0, 10.0]
        grid = np.array([1, 8, 48])
        assert np.allclose(interpolate_curve(n, t, grid), t)

    def test_linear_between_samples(self):
        curve = interpolate_curve([1, 3], [10.0, 20.0], [2])
        assert curve[0] == pytest.approx(15.0)

    def test_the_paper_grid_expansion(self):
        """Section 5.3: expand {1,3,8,16,32,48} samples to all of [1,48]."""
        n = [1, 3, 8, 16, 32, 48]
        t = [480.0, 200.0, 90.0, 55.0, 42.0, 40.0]
        grid = np.arange(1, 49)
        curve = interpolate_curve(n, t, grid)
        assert curve.shape == (48,)
        assert curve[0] == pytest.approx(480.0)
        assert curve[-1] == pytest.approx(40.0)
        assert np.all(np.diff(curve) <= 0)  # monotone samples stay monotone

    def test_unsorted_samples_handled(self):
        curve = interpolate_curve([3, 1], [20.0, 10.0], [2])
        assert curve[0] == pytest.approx(15.0)

    def test_flat_extension_outside_range(self):
        curve = interpolate_curve([2, 4], [10.0, 20.0], [1, 5])
        assert curve[0] == pytest.approx(10.0)
        assert curve[1] == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            interpolate_curve([1, 2], [1.0], [1])


class TestSlowdown:
    def test_on_minimum_is_one(self):
        assert slowdown(np.array([5.0, 3.0, 4.0]), 1) == pytest.approx(1.0)

    def test_relative_to_minimum(self):
        assert slowdown(np.array([6.0, 3.0, 4.0]), 0) == pytest.approx(2.0)

    def test_bad_index_rejected(self):
        with pytest.raises(IndexError):
            slowdown(np.array([1.0]), 5)

    def test_nonpositive_curve_rejected(self):
        with pytest.raises(ValueError):
            slowdown(np.array([0.0, 1.0]), 0)

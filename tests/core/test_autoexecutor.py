"""Unit tests for the AutoExecutor facade and optimizer rule."""

import numpy as np
import pytest

from repro.core.autoexecutor import AutoExecutor, AutoExecutorRule
from repro.core.ppm import AmdahlPPM
from repro.core.selection import limited_slowdown
from repro.engine.optimizer import Optimizer, OptimizerContext
from repro.workloads.tpcds import build_query


class _FixedScorer:
    def __init__(self, s=10.0, p=400.0):
        self.ppm = AmdahlPPM(s=s, p=p)
        self.calls = 0

    def predict_ppm(self, features):
        self.calls += 1
        return self.ppm


@pytest.fixture(scope="module")
def trained(workload_small, cluster, dataset_small):
    system = AutoExecutor(family="power_law")
    system.train_from_dataset(dataset_small)
    return system


class TestFacade:
    def test_training_produces_model(self, trained):
        assert trained.model is not None
        assert trained.dataset is not None

    def test_predict_curve_shape_and_monotonicity(self, trained, workload_small):
        curve = trained.predict_curve(workload_small.optimized_plan("q1"))
        assert curve.shape == (48,)
        assert np.all(np.diff(curve) <= 1e-9)

    def test_select_executors_in_range(self, trained, workload_small):
        for qid in list(workload_small)[:5]:
            n = trained.select_executors(workload_small.optimized_plan(qid))
            assert 1 <= n <= 48

    def test_untrained_facade_raises(self, workload_small):
        with pytest.raises(RuntimeError, match="not trained"):
            AutoExecutor().predict_curve(workload_small.optimized_plan("q1"))

    def test_custom_objective(self, dataset_small, workload_small):
        system = AutoExecutor(
            family="amdahl",
            objective=lambda grid, curve: limited_slowdown(grid, curve, 1.0),
        ).train_from_dataset(dataset_small)
        # AE_AL with H=1 must always select the max (no saturation)
        n = system.select_executors(workload_small.optimized_plan("q1"))
        assert n == 48

    def test_select_configuration_factorizes_cores(self, trained, workload_small):
        """Section 3.3: n -> k -> (n, ec) with no stranded node cores on
        the paper's testbed shape."""
        factorization = trained.select_configuration(
            workload_small.optimized_plan("q1")
        )
        n_direct = trained.select_executors(workload_small.optimized_plan("q1"))
        assert factorization.total_cores == n_direct * 4
        assert factorization.stranded_cores_per_node == 0
        assert factorization.cores_per_executor in (1, 2, 4, 8)

    def test_make_rule_wires_trained_model(self, trained, workload_small):
        rule = trained.make_rule()
        opt = Optimizer(extension_rules=[rule])
        context = opt.optimize(workload_small.plan("q1"))
        assert context.requested_executors is not None


class TestRule:
    def make_context(self):
        plan = build_query("q10", scale_factor=1)
        return OptimizerContext(plan=plan)

    def test_five_steps_produce_request_and_annotations(self):
        rule = AutoExecutorRule(model_loader=_FixedScorer)
        context = self.make_context()
        rule.apply(context)
        assert context.requested_executors is not None
        assert "autoexecutor.ppm_params" in context.annotations
        assert (
            context.annotations["autoexecutor.executors"]
            == context.requested_executors
        )

    def test_model_loaded_once_and_cached(self):
        loads = []

        def loader():
            loads.append(1)
            return _FixedScorer()

        rule = AutoExecutorRule(model_loader=loader)
        for _ in range(5):
            rule.apply(self.make_context())
        assert len(loads) == 1  # step 1: cache inside the optimizer

    def test_scored_once_per_query(self):
        scorer = _FixedScorer()
        rule = AutoExecutorRule(model_loader=lambda: scorer)
        rule.apply(self.make_context())
        assert scorer.calls == 1  # parametric: one score, many curve points

    def test_default_objective_is_elbow(self):
        # AE_AL fixed model -> elbow 7 on [1, 48]
        rule = AutoExecutorRule(model_loader=_FixedScorer)
        context = self.make_context()
        rule.apply(context)
        assert context.requested_executors == 7

    def test_clamping(self):
        rule = AutoExecutorRule(
            model_loader=_FixedScorer, min_executors=10, max_executors=20
        )
        context = self.make_context()
        rule.apply(context)
        assert 10 <= context.requested_executors <= 20

    def test_invalid_clamp_rejected(self):
        with pytest.raises(ValueError):
            AutoExecutorRule(model_loader=_FixedScorer, min_executors=0)
        with pytest.raises(ValueError):
            AutoExecutorRule(
                model_loader=_FixedScorer, min_executors=5, max_executors=2
            )

    def test_timings_collected(self):
        rule = AutoExecutorRule(model_loader=_FixedScorer)
        rule.apply(self.make_context())
        rule.apply(self.make_context())
        assert len(rule.timings["model_load"]) == 1
        assert len(rule.timings["featurize"]) == 2
        assert len(rule.timings["score"]) == 2
        assert len(rule.timings["select"]) == 2

"""Unit tests for the training-data pipeline."""

import numpy as np
import pytest

from repro.core.training import (
    DEFAULT_N_GRID,
    TRAINING_RUN_EXECUTORS,
    build_training_dataset,
    build_training_dataset_from_logs,
)


class TestBuildTrainingDataset:
    def test_one_row_per_query(self, dataset_small, workload_small):
        """The parametric approach (Section 3.4): one training data point
        per query, regardless of how many configurations exist."""
        assert len(dataset_small.query_ids) == len(workload_small)
        assert dataset_small.features.shape == (len(workload_small), 19)
        assert dataset_small.power_law_params.shape == (len(workload_small), 3)
        assert dataset_small.amdahl_params.shape == (len(workload_small), 2)

    def test_default_grid_is_1_to_48(self):
        assert DEFAULT_N_GRID[0] == 1 and DEFAULT_N_GRID[-1] == 48
        assert TRAINING_RUN_EXECUTORS == 16  # Section 5.1's single run

    def test_sparklens_curves_monotone(self, dataset_small):
        """Section 3.1 reason 3: Sparklens estimates are always monotone
        non-increasing, which is why they make clean PPM labels."""
        for curve in dataset_small.sparklens_curves.values():
            assert np.all(np.diff(curve) <= 1e-9)

    def test_labels_within_valid_regions(self, dataset_small):
        assert np.all(dataset_small.power_law_params[:, 0] <= 0)  # a
        assert np.all(dataset_small.power_law_params[:, 1] > 0)  # b
        assert np.all(dataset_small.power_law_params[:, 2] >= 0)  # m
        assert np.all(dataset_small.amdahl_params >= 0)  # s, p

    def test_labels_fit_their_curves(self, dataset_small):
        """Fitted PPMs must approximate the Sparklens curves they came
        from (Figure 4's premise)."""
        from repro.core.ppm import AmdahlPPM, PowerLawPPM

        grid = dataset_small.n_grid
        for i, qid in enumerate(dataset_small.query_ids[:10]):
            curve = dataset_small.sparklens_curves[qid]
            al = AmdahlPPM(*dataset_small.amdahl_params[i])
            err = np.abs(al.predict_curve(grid) - curve).sum() / curve.sum()
            assert err < 0.25

    def test_fit_time_recorded(self, dataset_small):
        """Section 5.6 reports ~0.3 ms per training point; ours must at
        least be sub-10ms and measured."""
        assert 0 < dataset_small.fit_seconds_per_point < 0.01

    def test_subset_consistency(self, dataset_small):
        sub = dataset_small.subset([0, 2, 4])
        assert len(sub.query_ids) == 3
        assert sub.query_ids[1] == dataset_small.query_ids[2]
        assert np.allclose(sub.features[1], dataset_small.features[2])
        assert set(sub.sparklens_curves) == set(sub.query_ids)

    def test_fit_parameter_model_families(self, dataset_small):
        pl = dataset_small.fit_parameter_model("power_law")
        al = dataset_small.fit_parameter_model("amdahl")
        ppm_pl = pl.predict_ppm(dataset_small.features[0])
        ppm_al = al.predict_ppm(dataset_small.features[0])
        assert ppm_pl.parameters().shape == (3,)
        assert ppm_al.parameters().shape == (2,)

    def test_deterministic(self, workload_small, cluster):
        d1 = build_training_dataset(workload_small, cluster)
        d2 = build_training_dataset(workload_small, cluster)
        assert np.allclose(d1.power_law_params, d2.power_law_params)
        assert np.allclose(d1.features, d2.features)


class TestBuildFromLogs:
    """The Section 4.1 production path: train from past telemetry."""

    def test_matches_simulated_pipeline(self, workload_small, cluster):
        from repro.engine.allocation import StaticAllocation
        from repro.engine.scheduler import simulate_query

        plans, logs = [], []
        for qid in workload_small:
            plans.append(workload_small.optimized_plan(qid))
            result = simulate_query(
                workload_small.stage_graph(qid),
                StaticAllocation(16),
                cluster,
                record_log=True,
            )
            logs.append(result.execution_log)
        from_logs = build_training_dataset_from_logs(plans, logs)
        from_sim = build_training_dataset(workload_small, cluster)
        assert from_logs.query_ids == from_sim.query_ids
        assert np.allclose(from_logs.power_law_params, from_sim.power_law_params)
        assert np.allclose(from_logs.features, from_sim.features)

    def test_rejects_mismatched_pairs(self, workload_small):
        plans = [workload_small.optimized_plan("q1")]
        with pytest.raises(ValueError, match="one-to-one"):
            build_training_dataset_from_logs(plans, [])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            build_training_dataset_from_logs([], [])

"""Integration fixtures: the full 103-query workload at SF=100.

The paper's qualitative error shapes (Figure 9's n=1 peak, the mid-range
dip) only emerge with the full query diversity, so integration runs the
complete workload with a reduced (1-repeat) cross-validation.
"""

from __future__ import annotations

import pytest

from repro.core.training import build_training_dataset
from repro.engine.cluster import Cluster
from repro.experiments.crossval import run_cross_validation
from repro.experiments.runtime_data import collect_actual_runtimes
from repro.workloads.generator import Workload


@pytest.fixture(scope="session")
def workload_mid():
    return Workload(scale_factor=100)


@pytest.fixture(scope="session")
def dataset_mid(workload_mid, cluster):
    return build_training_dataset(workload_mid, cluster)


@pytest.fixture(scope="session")
def actuals_mid(workload_mid, cluster):
    return collect_actual_runtimes(workload_mid, cluster, repeats=3, seed=0)


@pytest.fixture(scope="session")
def cv_mid(dataset_mid, actuals_mid):
    return run_cross_validation(
        dataset_mid, actuals_mid, n_repeats=1, n_splits=5, seed=0
    )

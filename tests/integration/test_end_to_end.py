"""End-to-end integration: the full AutoExecutor loop.

These tests exercise the complete pipeline the paper deploys — telemetry →
Sparklens augmentation → parameter-model training → portable-model export →
in-optimizer scoring → predictive allocation → execution — across module
boundaries.
"""

import numpy as np
import pytest

from repro.core.autoexecutor import AutoExecutor, AutoExecutorRule
from repro.core.selection import limited_slowdown
from repro.engine.allocation import (
    DynamicAllocation,
    PredictiveAllocation,
    StaticAllocation,
)
from repro.engine.optimizer import Optimizer
from repro.engine.scheduler import simulate_query
from repro.engine.session import SparkApplication
from repro.export.format import save_parameter_model
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer


class TestTrainPredictSelect:
    def test_facade_end_to_end(self, workload_mid, cluster, dataset_mid):
        system = AutoExecutor(family="power_law").train_from_dataset(dataset_mid)
        for qid in list(workload_mid)[:10]:
            n = system.select_executors(workload_mid.optimized_plan(qid))
            assert 1 <= n <= 48

    def test_selected_configs_beat_production_default(
        self, workload_mid, cluster, dataset_mid, actuals_mid
    ):
        """The paper's core value claim: predicted configurations are much
        faster than the default of 2 executors (Section 5.3 reports 2.6x
        expected speedup over static n=2)."""
        system = AutoExecutor(
            family="power_law",
            objective=lambda g, c: limited_slowdown(g, c, 1.0),
        ).train_from_dataset(dataset_mid)
        grid = np.arange(1, 49)
        speedups = []
        for qid in list(workload_mid)[::4]:
            n = system.select_executors(workload_mid.optimized_plan(qid))
            curve = actuals_mid.curve(qid, grid)
            speedups.append(curve[1] / curve[n - 1])  # vs static n=2
        assert np.mean(speedups) > 1.5


class TestPortableModelPath:
    def test_export_register_score_allocate(
        self, workload_mid, cluster, dataset_mid, tmp_path
    ):
        """Figure 6's full deployment path through the model registry."""
        model = dataset_mid.fit_parameter_model("power_law")
        save_parameter_model(model, tmp_path / "ae_pl.json")
        runtime = PortableModelRuntime(tmp_path)
        rule = AutoExecutorRule(
            model_loader=lambda: PortablePPMScorer(runtime, "ae_pl")
        )
        optimizer = Optimizer(extension_rules=[rule])
        context = optimizer.optimize(workload_mid.plan("q5"))
        n = context.requested_executors
        assert n is not None and 1 <= n <= 48

        # run the query under the predictive policy the rule implies
        graph = workload_mid.stage_graph("q5")
        result = simulate_query(
            graph, PredictiveAllocation(n, initial_executors=5), cluster
        )
        assert result.runtime > 0
        assert result.max_executors <= max(n, 5)

    def test_portable_scorer_agrees_with_direct_model(
        self, workload_mid, dataset_mid, tmp_path
    ):
        model = dataset_mid.fit_parameter_model("amdahl")
        save_parameter_model(model, tmp_path / "ae_al.json")
        scorer = PortablePPMScorer(PortableModelRuntime(tmp_path), "ae_al")
        from repro.core.features import QueryFeatures

        features = QueryFeatures.from_plan(workload_mid.optimized_plan("q7"))
        direct = model.predict_ppm(features).parameters()
        portable = scorer.predict_ppm(features).parameters()
        assert np.allclose(direct, portable, rtol=1e-9)


class TestInteractiveApplication:
    def test_figure7_lifecycle(self, workload_mid, cluster, dataset_mid):
        """Two queries in one app: predictive allocation per query,
        reactive deallocation in the gap."""
        system = AutoExecutor(family="power_law").train_from_dataset(dataset_mid)
        optimizer = Optimizer()
        optimizer.inject_rule(system.make_rule())
        app = SparkApplication(
            cluster=cluster, optimizer=optimizer, default_executors=2,
            idle_timeout=30.0,
        )
        row1 = app.run_query(workload_mid.plan("q7"))
        app.idle(60.0)
        row2 = app.run_query(workload_mid.plan("q19"))
        assert row1.executors_requested >= 1
        assert row2.executors_requested >= 1
        # the idle gap released the fleet down to the minimum
        gap_fleet = app.skyline.value_at(row1.runtime + 45.0)
        assert gap_fleet == 1


class TestPolicyComparison:
    def test_rule_saves_occupancy_versus_da_and_sa(
        self, workload_mid, cluster, dataset_mid, cv_mid
    ):
        """Directional Figure 13 check on the integration slice."""
        grid = np.arange(1, 49)
        rule_n = {}
        for fold in cv_mid.folds:
            for qid in fold.test_ids:
                rule_n[qid] = limited_slowdown(
                    grid, fold.predicted_curves["power_law"][qid], 1.05
                )
        total = {"da": 0.0, "sa": 0.0, "rule": 0.0}
        for qid in list(workload_mid)[::3]:
            graph = workload_mid.stage_graph(qid)
            total["da"] += simulate_query(
                graph, DynamicAllocation(1, 48), cluster
            ).auc
            total["sa"] += simulate_query(
                graph, StaticAllocation(48), cluster
            ).auc
            total["rule"] += simulate_query(
                graph,
                PredictiveAllocation(rule_n[qid], initial_executors=5),
                cluster,
            ).auc
        assert total["rule"] < total["da"] * 0.85
        assert total["rule"] < total["sa"] * 0.75

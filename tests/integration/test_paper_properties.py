"""Paper-shape assertions: the qualitative claims of Section 5.

Each test pins one qualitative result from the paper's evaluation; the
benches print the full quantitative series.
"""

import numpy as np
import pytest

from repro.core.selection import elbow_point, limited_slowdown
from repro.core.ppm import fit_amdahl, fit_power_law


GRID = np.arange(1, 49)


class TestFig4FitQuality:
    """AE_AL fits Sparklens better at small n; AE_PL at large n."""

    def test_amdahl_fits_sparklens_tightly_at_small_n(self, dataset_mid):
        def fit_err(family, n_lo, n_hi):
            errs, tots = 0.0, 0.0
            mask = (GRID >= n_lo) & (GRID <= n_hi)
            for i, qid in enumerate(dataset_mid.query_ids):
                curve = dataset_mid.sparklens_curves[qid]
                if family == "amdahl":
                    ppm = fit_amdahl(GRID, curve)
                else:
                    ppm = fit_power_law(GRID, curve)
                pred = ppm.predict_curve(GRID)
                errs += np.abs(pred[mask] - curve[mask]).sum()
                tots += curve[mask].sum()
            return errs / tots

        al_small = fit_err("amdahl", 1, 8)
        pl_small = fit_err("power_law", 1, 8)
        al_large = fit_err("amdahl", 40, 48)
        pl_large = fit_err("power_law", 40, 48)
        assert al_small < pl_small  # paper: AE_AL better below n=32
        assert pl_large < al_large  # paper: AE_PL better beyond
        # paper: ~7% or less using the best model per range
        assert al_small < 0.07
        assert pl_large < 0.07


class TestFig9ErrorShape:
    """E(n): largest at small n, smallest mid-range (Section 5.2)."""

    def test_error_largest_at_n1(self, cv_mid):
        for family in ("power_law", "amdahl", "sparklens"):
            e1 = cv_mid.mean_error_at(family, 1)
            for n in (3, 8, 16, 32, 48):
                assert e1 > cv_mid.mean_error_at(family, n) * 0.95

    def test_error_dips_at_intermediate_n(self, cv_mid):
        for family in ("power_law", "amdahl"):
            e_mid = min(
                cv_mid.mean_error_at(family, n) for n in (3, 8)
            )
            assert e_mid < cv_mid.mean_error_at(family, 1) * 0.75

    def test_models_track_sparklens_bias(self, cv_mid):
        """Model errors at n=1 are close to Sparklens's own error — the
        bias comes from the shared training source (Section 5.2)."""
        s = cv_mid.mean_error_at("sparklens", 1)
        pl = cv_mid.mean_error_at("power_law", 1)
        assert abs(pl - s) < 0.35

    def test_errors_bias_dominated_not_overfitted(self, cv_mid):
        """Train (fit) and test (prediction) errors share the same
        pattern: the models are not over-fitted (Section 5.2)."""
        for n in (3, 16, 48):
            train = cv_mid.mean_error_at("power_law", n, "train")
            test = cv_mid.mean_error_at("power_law", n, "test")
            assert test < train * 3.0


class TestFig10Selection:
    def test_amdahl_selects_max_n_at_h1(self, cv_mid):
        """AE_AL always selects 48 at H=1 (no saturation term)."""
        fold = cv_mid.folds[0]
        for qid in fold.test_ids:
            curve = fold.predicted_curves["amdahl"][qid]
            if curve[0] > curve[-1]:  # any scaling at all
                assert limited_slowdown(GRID, curve, 1.0) == 48

    def test_power_law_selects_fewer_executors_than_amdahl(self, cv_mid):
        fold = cv_mid.folds[0]
        pl = [
            limited_slowdown(GRID, fold.predicted_curves["power_law"][q], 1.0)
            for q in fold.test_ids
        ]
        al = [
            limited_slowdown(GRID, fold.predicted_curves["amdahl"][q], 1.0)
            for q in fold.test_ids
        ]
        assert np.mean(pl) < np.mean(al)

    def test_larger_h_saves_executors(self, cv_mid, actuals_mid):
        fold = cv_mid.folds[0]
        means = []
        for h in (1.0, 1.2, 2.0):
            ns = [
                limited_slowdown(
                    GRID, fold.predicted_curves["power_law"][q], h
                )
                for q in fold.test_ids
            ]
            means.append(np.mean(ns))
        assert means[0] > means[1] > means[2]


class TestFig11Elbows:
    def test_actual_elbows_cluster_near_8(self, actuals_mid):
        """Paper: the vast majority of queries have L = 8."""
        elbows = [
            elbow_point(GRID, actuals_mid.curve(q, GRID))
            for q in actuals_mid.query_ids
        ]
        assert 5 <= np.median(elbows) <= 9

    def test_amdahl_elbow_always_7(self, cv_mid):
        """Closed-form property the paper observed empirically."""
        fold = cv_mid.folds[0]
        for qid in fold.test_ids:
            curve = fold.predicted_curves["amdahl"][qid]
            if curve[0] > curve[-1]:
                assert elbow_point(GRID, curve) == 7

    def test_power_law_elbows_in_8_to_10(self, cv_mid):
        fold = cv_mid.folds[0]
        elbows = [
            elbow_point(GRID, fold.predicted_curves["power_law"][q])
            for q in fold.test_ids
        ]
        # paper: AE_PL selected 8, 9, or 10 (a spread around the actuals)
        assert 4 <= np.median(elbows) <= 11


class TestFig3cOptimalSpread:
    def test_optimal_executors_span_the_range(self, actuals_mid):
        """Prediction is hard because optima vary from ~1 to 48."""
        optima = [
            actuals_mid.optimal_executors(q) for q in actuals_mid.query_ids
        ]
        # at SF=100 the paper's Figure 3c spans small single-digit optima
        # up to 48 with a rich spread (SF=10 shifts left; the Fig 3c bench
        # prints both CDFs)
        assert min(optima) <= 10
        assert max(optima) >= 40
        assert len(set(optima)) >= 8


class TestSection55InputSizeChange:
    def test_sparklens_blind_to_scale_factor(self, cluster):
        """Sparklens estimates from SF=10 logs cannot track SF=100
        behaviour (Section 5.5's key observation)."""
        from repro.engine.allocation import StaticAllocation
        from repro.engine.scheduler import simulate_query
        from repro.sparklens.simulator import SparklensEstimator
        from repro.workloads.generator import Workload

        w10 = Workload(scale_factor=10, query_ids=("q29",))
        w100 = Workload(scale_factor=100, query_ids=("q29",))
        log10 = simulate_query(
            w10.stage_graph("q29"), StaticAllocation(16), cluster,
            record_log=True,
        ).execution_log
        actual100 = simulate_query(
            w100.stage_graph("q29"), StaticAllocation(16), cluster
        ).runtime
        est = SparklensEstimator(log10).estimate(16)
        assert est < actual100 * 0.6  # wildly underestimates the bigger SF

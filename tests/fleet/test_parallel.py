"""ProcessShardExecutor: multiprocess merge must equal the
single-process sharded serve bit for bit, per the determinism contract
in :mod:`repro.fleet.parallel`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.faults import FaultPlan, SpotMarket
from repro.fleet import (
    FleetConfig,
    LeastQueuedRouter,
    PoolSpec,
    ProcessShardExecutor,
    QueryArrival,
    ShardedFleet,
    StreamingConfig,
    poisson_arrivals,
    read_spooled_records,
    static_allocator,
)
from repro.workloads.generator import Workload

QIDS = ("q1", "q2", "q3", "q5", "q94")


@pytest.fixture(scope="module")
def workload():
    return Workload(scale_factor=50, query_ids=QIDS)


def assert_identical_record_mode(multi, single):
    assert multi.pool_of == single.pool_of
    assert len(multi.records) == len(single.records)
    for got, want in zip(multi.records, single.records):
        assert got == want
    for got, want in zip(multi.pools, single.pools):
        assert got.serving_window == want.serving_window
    assert multi.summary() == single.summary()


class TestRestrictions:
    def test_autoscaled_pool_rejected(self, workload):
        from repro.fleet.autoscaler import AutoscalerConfig

        spec = PoolSpec(
            capacity=8,
            autoscaler=AutoscalerConfig(min_capacity=4, max_capacity=32),
        )
        with pytest.raises(ValueError, match="autoscaled"):
            ProcessShardExecutor(workload, [spec, 16], static_allocator(4))

    def test_stateful_router_rejected(self, workload):
        with pytest.raises(ValueError, match="pool state"):
            ProcessShardExecutor(
                workload,
                [16, 16],
                static_allocator(4),
                router=LeastQueuedRouter(),
            )

    def test_bad_batch_size_rejected(self, workload):
        with pytest.raises(ValueError, match="batch_size"):
            ProcessShardExecutor(
                workload, [16, 16], static_allocator(4), batch_size=0
            )

    def test_no_pools_rejected(self, workload):
        with pytest.raises(ValueError, match="at least one pool"):
            ProcessShardExecutor(workload, [], static_allocator(4))

    def test_out_of_order_arrivals_rejected(self, workload):
        executor = ProcessShardExecutor(workload, [16, 16], static_allocator(4))
        arrivals = [
            QueryArrival(0, "q1", 0, 5.0),
            QueryArrival(1, "q1", 0, 1.0),
        ]
        with pytest.raises(ValueError, match="time-ordered"):
            executor.serve(arrivals)

    def test_empty_stream_rejected(self, workload):
        executor = ProcessShardExecutor(workload, [16, 16], static_allocator(4))
        with pytest.raises(ValueError, match="empty"):
            executor.serve([])


class TestMergeEqualsSingleProcess:
    def test_record_mode_bit_for_bit(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=200, rate_qps=2.0, seed=7)
        single = ShardedFleet(
            workload, [16, 16, 16], static_allocator(8)
        ).serve(arrivals)
        multi = ProcessShardExecutor(
            workload, [16, 16, 16], static_allocator(8)
        ).serve(arrivals)
        assert_identical_record_mode(multi, single)

    def test_small_batches_change_nothing(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=60, rate_qps=1.5, seed=3)
        single = ShardedFleet(workload, [16, 24], static_allocator(8)).serve(
            arrivals
        )
        multi = ProcessShardExecutor(
            workload, [16, 24], static_allocator(8), batch_size=7
        ).serve(arrivals)
        assert_identical_record_mode(multi, single)

    def test_streaming_stats_bit_for_bit(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=200, rate_qps=2.0, seed=7)
        config = FleetConfig(streaming=True)
        single = ShardedFleet(
            workload, [16, 16, 16], static_allocator(8), config=config
        ).serve(iter(arrivals))
        multi = ProcessShardExecutor(
            workload, [16, 16, 16], static_allocator(8), config=config
        ).serve(arrivals)
        assert multi.records == [] and single.records == []
        for got, want in zip(multi.pools, single.pools):
            assert got.stats == want.stats
            assert got.serving_window == want.serving_window
        assert multi.summary() == single.summary()

    def test_fault_plan_bit_for_bit(self, workload):
        plan = FaultPlan(
            seed=5,
            crash_rate=1 / 5000.0,
            straggler_rate=0.05,
            spot=SpotMarket(fraction=0.5, discount=0.35, reclaim_rate=1 / 2000.0),
        )
        config = FleetConfig(faults=plan)
        arrivals = poisson_arrivals(QIDS, n_queries=100, rate_qps=1.0, seed=13)
        single = ShardedFleet(
            workload, [16, 16], static_allocator(8), config=config
        ).serve(arrivals)
        multi = ProcessShardExecutor(
            workload, [16, 16], static_allocator(8), config=config
        ).serve(arrivals)
        assert_identical_record_mode(multi, single)
        assert multi.fault_stats.crashes == single.fault_stats.crashes
        assert multi.fault_stats.reclamations == single.fault_stats.reclamations

    def test_worker_spools_match_parent_records(self, workload, tmp_path):
        arrivals = poisson_arrivals(QIDS, n_queries=60, rate_qps=1.0, seed=2)
        single = ShardedFleet(workload, [16, 16], static_allocator(8)).serve(
            arrivals
        )
        config = FleetConfig(
            streaming=StreamingConfig(spool_dir=tmp_path / "spool")
        )
        ProcessShardExecutor(
            workload, [16, 16], static_allocator(8), config=config
        ).serve(arrivals)
        spooled = []
        for name in ("pool_000.jsonl", "pool_001.jsonl"):
            spooled.extend(read_spooled_records(tmp_path / "spool" / name))
        assert len(spooled) == 60
        by_key = {(r.query_id, r.arrival_time): r for r in single.records}
        for record in spooled:
            assert record.finish_time == by_key[
                (record.query_id, record.arrival_time)
            ].finish_time

    def test_worker_failure_propagates(self, workload):
        class ExplodingWorkload:
            """Pickles fine, blows up inside the worker."""

            def __init__(self, inner):
                self._inner = inner

            def optimized_plan(self, query_id):
                return self._inner.optimized_plan(query_id)

            def stage_graph(self, query_id):
                raise RuntimeError("boom in worker")

        executor = ProcessShardExecutor(
            ExplodingWorkload(workload), [16], static_allocator(4)
        )
        arrivals = poisson_arrivals(QIDS, n_queries=5, rate_qps=1.0, seed=1)
        with pytest.raises(RuntimeError, match="boom in worker"):
            executor.serve(arrivals)

class TestInProcessDrive:
    """Run the worker loop in-process (plain queues, no fork) — the same
    code path the subprocess runs, but visible to debuggers and to
    coverage measurement, which cannot see into forked children."""

    def _drive(self, executor, arrivals):
        import queue

        from repro.fleet.parallel import _drive_shard

        feeds = [queue.Queue() for _ in range(executor.n_pools)]
        pool_of, placed_qs, total = executor._dispatch(arrivals, feeds)
        metrics_by_pool = [
            _drive_shard(
                feeds[i],
                i,
                executor.workload,
                executor.pools[i],
                executor.cluster,
                executor.config,
            )
            for i in range(executor.n_pools)
        ]
        return executor._assemble(metrics_by_pool, pool_of, placed_qs, total)

    def test_record_mode(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=80, rate_qps=1.5, seed=17)
        single = ShardedFleet(workload, [16, 16], static_allocator(8)).serve(
            arrivals
        )
        multi = self._drive(
            ProcessShardExecutor(workload, [16, 16], static_allocator(8)),
            arrivals,
        )
        assert_identical_record_mode(multi, single)

    def test_streaming_mode(self, workload):
        config = FleetConfig(streaming=True)
        arrivals = poisson_arrivals(QIDS, n_queries=80, rate_qps=1.5, seed=17)
        single = ShardedFleet(
            workload, [16, 16], static_allocator(8), config=config
        ).serve(iter(arrivals))
        multi = self._drive(
            ProcessShardExecutor(
                workload, [16, 16], static_allocator(8), config=config
            ),
            arrivals,
        )
        for got, want in zip(multi.pools, single.pools):
            assert got.stats == want.stats
        assert multi.summary() == single.summary()


class TestMergeProperty:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_queries=st.integers(min_value=4, max_value=40),
        n_pools=st.integers(min_value=1, max_value=4),
        budget=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=5, deadline=None)
    def test_merge_equals_single_process_property(
        self, seed, n_queries, n_pools, budget
    ):
        workload = Workload(scale_factor=50, query_ids=QIDS)
        arrivals = poisson_arrivals(
            QIDS, n_queries=n_queries, rate_qps=1.0, seed=seed
        )
        pools = [16] * n_pools
        single = ShardedFleet(
            workload, pools, static_allocator(budget)
        ).serve(arrivals)
        multi = ProcessShardExecutor(
            workload, pools, static_allocator(budget)
        ).serve(arrivals)
        assert_identical_record_mode(multi, single)

"""Fleet-engine tests: determinism, capacity invariants, serving
semantics, metrics plumbing."""

import pytest

from repro.fleet import (
    FairShareAdmission,
    FleetConfig,
    FleetEngine,
    Prediction,
    QueryArrival,
    poisson_arrivals,
    static_allocator,
    trace_arrivals,
)
from repro.workloads.generator import Workload
from repro.workloads.production import generate_production_trace

QIDS = ("q1", "q2", "q3", "q5", "q94")


@pytest.fixture(scope="module")
def workload():
    return Workload(scale_factor=50, query_ids=QIDS)


class TestServingSemantics:
    def test_all_queries_complete(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=25, rate_qps=0.5, seed=0)
        metrics = FleetEngine(
            workload, capacity=32, allocator=static_allocator(8)
        ).serve(arrivals)
        assert metrics.n_queries == 25
        assert all(r.finish_time > r.admit_time for r in metrics.records)
        assert all(r.admit_time >= r.arrival_time for r in metrics.records)
        assert all(r.auc > 0 for r in metrics.records)

    def test_uncontended_pool_has_no_queueing(self, workload):
        """One query alone on a big pool is admitted instantly."""
        arrivals = [QueryArrival(0, "q1", 0, 0.0)]
        metrics = FleetEngine(
            workload, capacity=64, allocator=static_allocator(8)
        ).serve(arrivals)
        assert metrics.records[0].queue_delay == 0.0

    def test_contention_produces_queueing(self, workload):
        """A burst over a tiny pool must wait for capacity."""
        arrivals = [QueryArrival(i, "q1", i, 0.0) for i in range(6)]
        metrics = FleetEngine(
            workload, capacity=8, allocator=static_allocator(8)
        ).serve(arrivals)
        delays = [r.queue_delay for r in metrics.records]
        assert delays[0] == 0.0
        assert sum(d > 0 for d in delays) == 5  # the rest queued
        assert metrics.mean_queue_delay > 0

    def test_budgets_clamped_to_pool(self, workload):
        """A request bigger than the whole pool still gets served."""
        arrivals = [QueryArrival(0, "q1", 0, 0.0)]
        metrics = FleetEngine(
            workload, capacity=4, allocator=static_allocator(64)
        ).serve(arrivals)
        assert metrics.records[0].executors_granted == 4
        assert metrics.capacity_respected

    def test_prediction_overhead_charged_before_admission(self, workload):
        def slow_allocator(query_id, plan):
            return Prediction(executors=4, cached=False, seconds=2.5)

        arrivals = [QueryArrival(0, "q1", 0, 0.0)]
        metrics = FleetEngine(
            workload, capacity=32, allocator=slow_allocator
        ).serve(arrivals)
        record = metrics.records[0]
        assert record.admit_time == pytest.approx(2.5)
        assert record.prediction_seconds == 2.5
        assert record.prediction_cached is False

        uncharged = FleetEngine(
            workload,
            capacity=32,
            allocator=slow_allocator,
            config=FleetConfig(charge_prediction_overhead=False),
        ).serve(arrivals)
        assert uncharged.records[0].admit_time == pytest.approx(0.0)

    def test_shuffled_index_fields_do_not_mismatch_decisions(self, workload):
        """Regression: the engine used to mix positional and ``index``
        keying, silently pairing allocator decisions with the wrong
        queries whenever index fields did not equal list positions."""
        budgets = {"q1": 3, "q2": 5, "q3": 7}
        arrivals = [
            QueryArrival(7, "q1", 0, 0.0),
            QueryArrival(2, "q2", 1, 1.0),
            QueryArrival(11, "q3", 2, 2.0),
        ]

        def allocator(query_id, plan):
            return budgets[query_id]

        metrics = FleetEngine(
            workload, capacity=64, allocator=allocator
        ).serve(arrivals)
        assert [r.query_id for r in metrics.records] == ["q1", "q2", "q3"]
        for record in metrics.records:
            assert record.executors_granted == budgets[record.query_id]
            assert record.arrival_time == {
                "q1": 0.0, "q2": 1.0, "q3": 2.0
            }[record.query_id]

    def test_duplicate_indices_rejected(self, workload):
        arrivals = [
            QueryArrival(0, "q1", 0, 0.0),
            QueryArrival(0, "q2", 1, 1.0),
        ]
        with pytest.raises(ValueError, match="duplicate indices"):
            FleetEngine(
                workload, capacity=8, allocator=static_allocator(2)
            ).serve(arrivals)

    def test_idle_release_returns_capacity_early(self, workload):
        """With idle release on, tail stages run on fewer executors, so
        the fleet-wide occupancy drops versus holding budgets to the end."""
        arrivals = poisson_arrivals(QIDS, n_queries=10, rate_qps=0.2, seed=4)
        held = FleetEngine(
            workload,
            capacity=64,
            allocator=static_allocator(16),
            config=FleetConfig(idle_release_timeout=None),
        ).serve(arrivals)
        released = FleetEngine(
            workload,
            capacity=64,
            allocator=static_allocator(16),
            config=FleetConfig(idle_release_timeout=5.0),
        ).serve(arrivals)
        assert (
            released.total_executor_seconds < held.total_executor_seconds
        )


class TestCapacityInvariant:
    @pytest.mark.parametrize("admission", [None, FairShareAdmission()])
    @pytest.mark.parametrize("capacity", [8, 24, 64])
    def test_pool_never_overcommitted(self, workload, admission, capacity):
        arrivals = poisson_arrivals(QIDS, n_queries=40, rate_qps=2.0, seed=1)
        metrics = FleetEngine(
            workload,
            capacity=capacity,
            allocator=static_allocator(12),
            admission=admission,
        ).serve(arrivals)
        assert metrics.capacity_respected
        assert metrics.peak_pool_usage <= capacity

    def test_fair_share_helps_small_tenants_under_contention(self, workload):
        """Fair-share admits waiting small requests FIFO would block."""
        arrivals = [
            QueryArrival(0, "q1", 0, 0.0),   # big app warms the pool
            QueryArrival(1, "q1", 0, 0.1),   # big app asks again (blocked)
            QueryArrival(2, "q2", 1, 0.2),   # small tenant
        ]

        def allocator(query_id, plan):
            return {"q1": 12, "q2": 4}[query_id]

        fifo = FleetEngine(
            workload, capacity=16, allocator=allocator
        ).serve(arrivals)
        fair = FleetEngine(
            workload,
            capacity=16,
            allocator=allocator,
            admission=FairShareAdmission(),
        ).serve(arrivals)
        assert (
            fair.records[2].queue_delay < fifo.records[2].queue_delay
        )


class TestDeterminism:
    def test_same_seed_same_metrics(self, workload):
        """The fleet's core reproducibility contract: same seed + trace
        -> bit-identical fleet metrics."""
        trace = generate_production_trace(n_applications=200, seed=6)
        arrivals = trace_arrivals(trace, QIDS, n_queries=60, seed=6)

        def run():
            return FleetEngine(
                workload,
                capacity=48,
                allocator=static_allocator(8),
                admission=FairShareAdmission(),
            ).serve(arrivals)

        first, second = run(), run()
        assert first.summary() == second.summary()
        assert first.records == second.records
        assert first.pool_skyline.points == second.pool_skyline.points

    def test_different_seed_different_stream(self, workload):
        a = trace_arrivals(
            generate_production_trace(n_applications=200, seed=6),
            QIDS,
            n_queries=60,
            seed=6,
        )
        b = trace_arrivals(
            generate_production_trace(n_applications=200, seed=6),
            QIDS,
            n_queries=60,
            seed=7,
        )
        assert a != b


class TestMetrics:
    def test_percentiles_ordered(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=30, rate_qps=1.0, seed=2)
        m = FleetEngine(
            workload, capacity=32, allocator=static_allocator(8)
        ).serve(arrivals)
        assert m.p50_latency <= m.p95_latency <= m.p99_latency
        assert 0.0 < m.utilization() <= 1.0
        assert m.total_dollar_cost > 0
        summary = m.summary()
        assert summary["n_queries"] == 30.0
        assert "describe" not in summary
        assert "queries served" in m.describe()

    def test_summary_captures_tail_queueing_and_cache_behavior(
        self, workload
    ):
        """Regression: summary() omitted max_queue_delay and the
        prediction cache hit rate, so benchmark JSON never captured the
        tail-queueing or cache behavior it asserts on."""
        arrivals = [QueryArrival(i, "q1", i, 0.0) for i in range(4)]

        def allocator(query_id, plan):
            return Prediction(executors=8, cached=True, seconds=0.0)

        m = FleetEngine(
            workload, capacity=8, allocator=allocator
        ).serve(arrivals)
        summary = m.summary()
        assert summary["max_queue_delay_s"] == m.max_queue_delay
        assert summary["max_queue_delay_s"] > 0
        assert summary["max_queue_delay_s"] >= summary["mean_queue_delay_s"]
        assert (
            summary["prediction_cache_hit_rate"]
            == m.prediction_cache_hit_rate()
        )
        assert summary["prediction_cache_hit_rate"] == 1.0
        # describe() stays in sync with the summary's headline numbers
        report = m.describe()
        assert "max queueing delay" in report
        assert "prediction cache hit" in report

    def test_empty_stream_rejected(self, workload):
        with pytest.raises(ValueError):
            FleetEngine(
                workload, capacity=8, allocator=static_allocator(2)
            ).serve([])


class TestStallGuard:
    def test_never_admitting_policy_raises_instead_of_hanging(
        self, workload
    ):
        """A custom policy that refuses everything must surface as an
        error, not an infinite tick chain."""

        class RejectAll:
            name = "reject_all"

            def pick(self, queue, free, app_usage):
                return None

        arrivals = [QueryArrival(0, "q1", 0, 0.0)]
        with pytest.raises(RuntimeError, match="admission stalled"):
            FleetEngine(
                workload,
                capacity=8,
                allocator=static_allocator(4),
                admission=RejectAll(),
            ).serve(arrivals)

"""The continual-learning loop: seed determinism, drift semantics, and
zero-retrain parity with the frozen fleet.

The module's determinism contract (``repro.fleet.adaptive``): the replay
buffer's seeded reservoir is the loop's only randomness, so the same
seed and the same finish stream reproduce the buffer, the retrain
points, and the promoted models byte for byte — and a controller that
never retrains serves bit-identically to a frozen fleet (same pattern
as ``tests/engine/test_fault_parity.py``'s inert ``FaultPlan``).

Cross-run comparisons disable ``charge_prediction_overhead`` and zero
``QueryRecord.prediction_seconds``: selection overhead is *measured*
wall-clock by design, the one intentionally nondeterministic field.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.autoexecutor import AutoExecutor
from repro.core.ppm import PowerLawPPM
from repro.fleet.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    DriftDetector,
    ReplayBuffer,
    ReplayPoint,
)
from repro.fleet.arrivals import poisson_arrivals
from repro.fleet.cluster import ShardedFleet
from repro.fleet.engine import FleetConfig, FleetEngine, static_allocator
from repro.fleet.parallel import ProcessShardExecutor
from repro.fleet.prediction import PredictionService
from repro.obs.trace import EVENT_KINDS, RingBufferTracer
from repro.workloads.generator import Workload

QIDS = ("q1", "q2", "q3", "q5", "q94")

#: Aggressive loop knobs for tests: small windows so a short serve can
#: drift, retrain, and promote; a small forest so retraining is cheap.
FAST = dict(
    buffer_capacity=32,
    min_retrain_points=8,
    drift_window=8,
    drift_threshold=0.3,
    shadow_window=6,
    n_estimators=8,
)


@pytest.fixture(scope="module")
def trained():
    """An AutoExecutor trained on the pre-shift regime (SF=10)."""
    return AutoExecutor(family="power_law").train(
        Workload(scale_factor=10, query_ids=QIDS)
    )


@pytest.fixture(scope="module")
def shifted():
    """The post-shift regime the frozen model mispredicts (SF=100)."""
    return Workload(scale_factor=100, query_ids=QIDS)


def _point(i: int) -> ReplayPoint:
    """A buffer-only point: the reservoir never reads the payload."""
    return ReplayPoint(
        index=i,
        query_id=f"q{i}",
        features=None,
        plan=None,
        log=None,
        observed_runtime_seconds=1.0,
        predicted_runtime_seconds=None,
    )


def _retained(buffer: ReplayBuffer) -> list[int]:
    return [p.index for p in buffer.points]


def stable_records(metrics):
    """Records with the wall-clock measurement field zeroed."""
    return [replace(r, prediction_seconds=0.0) for r in metrics.records]


def adaptive_serve(system, workload, arrivals, seed=0, tracer=None, **overrides):
    """One adaptive serve; returns (metrics, controller, service)."""
    knobs = {**FAST, **overrides}
    service = PredictionService.from_autoexecutor(system)
    controller = AdaptiveController(
        service, AdaptiveConfig(seed=seed, **knobs), tracer=tracer
    )
    config = FleetConfig(
        record_logs=True, feedback=controller, charge_prediction_overhead=False
    )
    metrics = FleetEngine(
        workload, capacity=64, allocator=service.allocate, config=config
    ).serve(arrivals)
    return metrics, controller, service


class TestReplayBuffer:
    def test_fills_in_order_below_capacity(self):
        buffer = ReplayBuffer(capacity=8, seed=0)
        for i in range(5):
            assert buffer.add(_point(i)) is True
        assert _retained(buffer) == [0, 1, 2, 3, 4]
        assert len(buffer) == 5
        assert buffer.observed == 5

    def test_bounded_and_counts_everything(self):
        buffer = ReplayBuffer(capacity=16, seed=0)
        for i in range(200):
            buffer.add(_point(i))
        assert len(buffer) == 16
        assert buffer.observed == 200
        # Reservoir sampling keeps late-stream points: the buffer is a
        # uniform sample of all 200, not the first 16.
        assert max(_retained(buffer)) >= 16

    def test_same_seed_same_stream_byte_identical(self):
        a, b = ReplayBuffer(16, seed=3), ReplayBuffer(16, seed=3)
        for i in range(200):
            a.add(_point(i))
            b.add(_point(i))
        assert _retained(a) == _retained(b)

    def test_different_seeds_diverge(self):
        a, b = ReplayBuffer(16, seed=0), ReplayBuffer(16, seed=1)
        for i in range(200):
            a.add(_point(i))
            b.add(_point(i))
        assert _retained(a) != _retained(b)

    def test_points_is_a_copy(self):
        buffer = ReplayBuffer(4, seed=0)
        buffer.add(_point(0))
        buffer.points.clear()
        assert len(buffer) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


class TestDriftDetector:
    def test_no_alarm_until_window_full(self):
        drift = DriftDetector(window=4, threshold=0.5)
        assert [drift.observe(2.0) for _ in range(3)] == [False] * 3
        assert drift.observe(2.0) is True
        assert drift.alarms == 1

    def test_window_resets_after_alarm(self):
        drift = DriftDetector(window=4, threshold=0.5)
        for _ in range(4):
            drift.observe(2.0)
        assert drift.alarms == 1
        # The window cleared: three more high errors cannot re-alarm yet.
        assert [drift.observe(2.0) for _ in range(3)] == [False] * 3
        assert drift.observe(2.0) is True
        assert drift.alarms == 2

    def test_no_alarm_below_threshold(self):
        drift = DriftDetector(window=4, threshold=0.5)
        assert not any(drift.observe(0.4) for _ in range(40))
        assert drift.alarms == 0
        assert drift.last_mean == pytest.approx(0.4)

    def test_one_spike_in_a_quiet_window_stays_quiet(self):
        drift = DriftDetector(window=8, threshold=0.5)
        errors = [0.1] * 7 + [2.0]  # mean 0.3375
        assert not any(drift.observe(e) for e in errors)

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(window=0, threshold=0.5)
        with pytest.raises(ValueError):
            DriftDetector(window=4, threshold=0.0)


class TestAdaptiveConfigValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"buffer_capacity": 0},
            {"min_retrain_points": 0},
            {"retrain_interval": 0},
            {"drift_window": 0},
            {"drift_threshold": 0.0},
            {"shadow_window": 0},
            {"promote_margin": 0.0},
            {"n_estimators": 0},
            {"retrain_cost_executor_seconds_per_point": -0.1},
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            AdaptiveConfig(**bad)


class TestAdaptiveServe:
    """The loop end to end: a frozen SF=10 model serving SF=100 traffic."""

    def test_shift_drifts_retrains_and_promotes(self, trained, shifted):
        tracer = RingBufferTracer()
        arrivals = poisson_arrivals(QIDS, n_queries=60, rate_qps=0.5, seed=5)
        metrics, controller, service = adaptive_serve(
            trained, shifted, arrivals, seed=0, tracer=tracer
        )
        stats = metrics.adaptive
        assert stats is not None
        assert stats.observations == 60
        assert stats.drift_alarms >= 1
        assert stats.retrains >= 1
        assert stats.model_generation == service.generation
        assert stats.retrains == stats.promotions + stats.rejections + (
            1 if controller._shadow is not None else 0
        )
        # The retraining bill is deterministic, modeled, and priced in.
        per_point = controller.config.retrain_cost_executor_seconds_per_point
        assert stats.retrain_executor_seconds == stats.retrain_points * per_point
        summary = metrics.summary()
        assert summary["model_retrains"] == float(stats.retrains)
        assert summary["retrain_dollar_cost"] > 0.0
        assert metrics.retrain_executor_seconds == stats.retrain_executor_seconds
        # The loop's events ride the fleet timeline, inside the taxonomy.
        kinds = [e.kind for e in tracer.events]
        assert set(kinds) <= EVENT_KINDS
        assert "drift_alarm" in kinds
        assert "model_retrain" in kinds
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_same_seed_byte_identical(self, trained, shifted):
        arrivals = poisson_arrivals(QIDS, n_queries=60, rate_qps=0.5, seed=5)
        first = adaptive_serve(trained, shifted, arrivals, seed=7)
        second = adaptive_serve(trained, shifted, arrivals, seed=7)
        m1, c1, s1 = first
        m2, c2, s2 = second
        assert stable_records(m1) == stable_records(m2)
        assert _retained(c1.buffer) == _retained(c2.buffer)
        assert [p.query_id for p in c1.buffer.points] == [
            p.query_id for p in c2.buffer.points
        ]
        assert c1.stats_snapshot() == c2.stats_snapshot()
        assert s1.generation == s2.generation
        # The promoted models are the same model: identical curves on
        # every buffered feature vector.
        grid = np.array([2, 8, 32])
        for p1, p2 in zip(c1.buffer.points, c2.buffer.points):
            curve1 = s1.scorer.predict_ppm(p1.features).predict_curve(grid)
            curve2 = s2.scorer.predict_ppm(p2.features).predict_curve(grid)
            assert np.array_equal(np.asarray(curve1), np.asarray(curve2))

    def test_different_seeds_diverge(self, trained, shifted):
        arrivals = poisson_arrivals(QIDS, n_queries=60, rate_qps=0.5, seed=5)
        _, c1, _ = adaptive_serve(trained, shifted, arrivals, seed=0)
        _, c2, _ = adaptive_serve(trained, shifted, arrivals, seed=1)
        assert _retained(c1.buffer) != _retained(c2.buffer)

    def test_requires_record_logs(self, trained):
        train = Workload(scale_factor=10, query_ids=("q1",))
        service = PredictionService.from_autoexecutor(trained)
        controller = AdaptiveController(service, AdaptiveConfig(**FAST))
        engine = FleetEngine(
            train,
            capacity=16,
            allocator=service.allocate,
            config=FleetConfig(feedback=controller),  # record_logs off
        )
        with pytest.raises(ValueError, match="record_logs"):
            engine.serve(poisson_arrivals(("q1",), 2, 1.0, seed=0))

    def test_process_shard_executor_rejects_feedback(self, shifted):
        class FixedScorer:
            def predict_ppm(self, features):
                return PowerLawPPM(a=-0.8, b=400.0, m=10.0)

        controller = AdaptiveController(PredictionService(FixedScorer()))
        with pytest.raises(ValueError, match="feedback"):
            ProcessShardExecutor(
                shifted,
                [16],
                static_allocator(4),
                config=FleetConfig(record_logs=True, feedback=controller),
            )


class TestZeroRetrainParity:
    """A controller that never retrains is invisible: bit-identical
    records, skylines, and (frozen-key) summaries versus no feedback
    at all — the adaptive analogue of the inert-``FaultPlan`` parity."""

    #: Thresholds no finite serve can cross: the loop observes
    #: everything and changes nothing.
    INERT = dict(drift_threshold=1e9, min_retrain_points=10**6)

    def test_fleet_engine_bit_identical(self, trained, shifted):
        arrivals = poisson_arrivals(QIDS, n_queries=40, rate_qps=0.5, seed=3)
        config = FleetConfig(record_logs=True, charge_prediction_overhead=False)

        frozen = PredictionService.from_autoexecutor(trained)
        reference = FleetEngine(
            shifted, capacity=64, allocator=frozen.allocate, config=config
        ).serve(arrivals)

        service = PredictionService.from_autoexecutor(trained)
        controller = AdaptiveController(service, AdaptiveConfig(**self.INERT))
        candidate = FleetEngine(
            shifted,
            capacity=64,
            allocator=service.allocate,
            config=replace(config, feedback=controller),
        ).serve(arrivals)

        assert stable_records(candidate) == stable_records(reference)
        assert candidate.pool_skyline.points == reference.pool_skyline.points
        ref_summary, candidate_summary = reference.summary(), candidate.summary()
        # The frozen key set is bit-identical; the candidate only *adds*
        # the continual-learning keys, all reporting an idle loop.
        assert {k: candidate_summary[k] for k in ref_summary} == ref_summary
        assert candidate.total_dollar_cost == reference.total_dollar_cost
        assert controller.observations == 40
        assert controller.retrains == 0
        assert service.generation == 0
        assert candidate.adaptive is not None
        assert candidate.adaptive.retrain_executor_seconds == 0.0

    def test_sharded_fleet_bit_identical(self, trained, shifted):
        arrivals = poisson_arrivals(QIDS, n_queries=40, rate_qps=1.0, seed=11)
        # The reference does not even record logs: capturing them for
        # the feedback hook must not perturb the serve either.
        frozen = PredictionService.from_autoexecutor(trained)
        reference = ShardedFleet(
            shifted,
            [48, 48],
            frozen.allocate,
            config=FleetConfig(charge_prediction_overhead=False),
        ).serve(arrivals)

        service = PredictionService.from_autoexecutor(trained)
        controller = AdaptiveController(service, AdaptiveConfig(**self.INERT))
        candidate = ShardedFleet(
            shifted,
            [48, 48],
            service.allocate,
            config=FleetConfig(
                record_logs=True,
                feedback=controller,
                charge_prediction_overhead=False,
            ),
        ).serve(arrivals)

        assert stable_records(candidate) == stable_records(reference)
        for cand_pool, ref_pool in zip(candidate.pools, reference.pools):
            assert cand_pool.pool_skyline.points == ref_pool.pool_skyline.points
            # The ledger attaches once, at the cluster level — never per
            # pool, where N copies would multiply the retraining bill.
            assert cand_pool.adaptive is None
        assert candidate.adaptive is not None
        ref_summary, candidate_summary = reference.summary(), candidate.summary()
        assert {k: candidate_summary[k] for k in ref_summary} == ref_summary
        assert controller.observations == 40
        assert controller.retrains == 0

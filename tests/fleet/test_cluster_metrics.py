"""Metrics tests for elastic capacity: the idle-autoscaled-cost bugfix
and the ClusterMetrics rollups."""

import pytest

from repro.engine.skyline import Skyline
from repro.fleet.metrics import (
    DEFAULT_PRICE_PER_CORE_HOUR,
    ClusterMetrics,
    FleetMetrics,
    QueryRecord,
)


def record(arrival=0.0, admit=0.0, finish=100.0, auc=800.0, cached=None):
    return QueryRecord(
        query_id="q1",
        app_id=0,
        arrival_time=arrival,
        admit_time=admit,
        finish_time=finish,
        executors_granted=8,
        auc=auc,
        prediction_cached=cached,
    )


def skyline(points):
    s = Skyline()
    for t, c in points:
        s.record(t, c)
    return s


def dollars(executor_seconds, cores=4):
    return executor_seconds * cores / 3600.0 * DEFAULT_PRICE_PER_CORE_HOUR


class TestIdleCapacityCharging:
    """Regression: autoscaled-but-idle capacity must show up in $ cost.

    The fleet billed pure occupancy, so capacity an autoscaler
    provisioned that no query ever reserved was free — scale-ups looked
    costless and the static-vs-elastic comparison was rigged.
    """

    def build(self, with_capacity_skyline):
        # One query holds 8 executors for [0, 100); the autoscaler grew
        # the pool from 8 to 24 at t=50, and the 16 extra executors sat
        # completely idle for the remaining 50 s.
        return FleetMetrics(
            capacity=24,
            cores_per_executor=4,
            records=[record(auc=800.0)],
            pool_skyline=skyline([(0.0, 0), (0.0, 8), (100.0, 0)]),
            capacity_skyline=(
                skyline([(0.0, 8), (50.0, 24)]) if with_capacity_skyline else None
            ),
        )

    def test_idle_scale_up_shows_up_in_dollar_cost(self):
        static = self.build(with_capacity_skyline=False)
        elastic = self.build(with_capacity_skyline=True)
        assert static.idle_capacity_seconds == 0.0
        # provisioned 8*50 + 24*50 = 1600 exec-s, reserved 800 -> 800 idle
        assert elastic.idle_capacity_seconds == pytest.approx(800.0)
        assert static.total_dollar_cost == pytest.approx(dollars(800.0))
        assert elastic.total_dollar_cost == pytest.approx(dollars(1600.0))
        assert elastic.total_dollar_cost > static.total_dollar_cost

    def test_idle_charge_shows_up_in_summary_and_describe(self):
        elastic = self.build(with_capacity_skyline=True)
        summary = elastic.summary()
        assert summary["idle_capacity_seconds"] == pytest.approx(800.0)
        assert summary["total_dollar_cost"] == pytest.approx(dollars(1600.0))
        report = elastic.describe()
        assert "idle capacity cost" in report
        assert f"${elastic.idle_capacity_dollar_cost:9.2f}" in report
        assert f"${elastic.total_dollar_cost:9.2f}" in report

    def test_fully_used_scale_up_carries_no_idle_charge(self):
        metrics = FleetMetrics(
            capacity=16,
            cores_per_executor=4,
            records=[record(auc=1200.0)],
            pool_skyline=skyline([(0.0, 0), (0.0, 8), (50.0, 16), (100.0, 0)]),
            capacity_skyline=skyline([(0.0, 8), (50.0, 16)]),
        )
        # provisioned == reserved == occupied == 1200 exec-s: no idle gap
        assert metrics.reserved_executor_seconds == pytest.approx(1200.0)
        assert metrics.idle_capacity_seconds == pytest.approx(0.0)
        assert metrics.total_dollar_cost == pytest.approx(dollars(1200.0))

    def test_provisioning_lag_gap_is_billed(self):
        """Regression: capacity reserved by a grant whose executors had
        not arrived yet (the provisioning ramp) was billed by neither
        the occupancy term nor the old reserved-based idle term.  Every
        provisioned executor-second must land on the bill."""
        metrics = FleetMetrics(
            capacity=16,
            cores_per_executor=4,
            # occupancy 800 < reserved 900 < provisioned 1600
            records=[record(auc=800.0)],
            pool_skyline=skyline([(0.0, 0), (0.0, 9), (100.0, 0)]),
            capacity_skyline=skyline([(0.0, 16)]),
        )
        assert metrics.reserved_executor_seconds == pytest.approx(900.0)
        assert metrics.idle_capacity_seconds == pytest.approx(800.0)
        # occupancy (800) + idle (800) == provisioned (1600): nothing
        # slips between the two terms.
        assert metrics.total_dollar_cost == pytest.approx(
            metrics.provisioned_dollar_cost
        )

    def test_provisioned_cost_of_static_pool_is_capacity_times_window(self):
        static = self.build(with_capacity_skyline=False)
        assert static.provisioned_executor_seconds == pytest.approx(24 * 100.0)
        assert static.provisioned_dollar_cost == pytest.approx(dollars(2400.0))

    def test_time_varying_capacity_respected_check(self):
        ok = self.build(with_capacity_skyline=True)
        assert ok.capacity_respected
        bad = FleetMetrics(
            capacity=8,
            cores_per_executor=4,
            records=[record()],
            pool_skyline=skyline([(0.0, 0), (0.0, 12), (100.0, 0)]),
            capacity_skyline=skyline([(0.0, 8)]),
        )
        assert not bad.capacity_respected


class TestClusterRollups:
    def build(self):
        pool_a = FleetMetrics(
            capacity=16,
            cores_per_executor=4,
            records=[record(finish=100.0, auc=800.0, cached=True)],
            pool_skyline=skyline([(0.0, 0), (0.0, 8), (100.0, 0)]),
        )
        pool_b = FleetMetrics(
            capacity=24,
            cores_per_executor=4,
            records=[
                record(arrival=10.0, admit=20.0, finish=210.0, auc=1000.0, cached=False)
            ],
            pool_skyline=skyline([(0.0, 0), (20.0, 8), (210.0, 0)]),
            capacity_skyline=skyline([(0.0, 8), (100.0, 24)]),
        )
        cluster = ClusterMetrics(
            pools=[pool_a, pool_b],
            records=[pool_a.records[0], pool_b.records[0]],
            pool_of=[0, 1],
        )
        return pool_a, pool_b, cluster

    def test_counts_and_spans(self):
        pool_a, pool_b, cluster = self.build()
        assert cluster.n_pools == 2
        assert cluster.n_queries == 2
        assert cluster.makespan == 210.0  # first arrival 0 -> last finish 210
        assert cluster.queries_per_pool() == [1, 1]
        assert cluster.total_capacity == pool_a.capacity + pool_b.capacity

    def test_costs_are_pool_sums(self):
        pool_a, pool_b, cluster = self.build()
        assert cluster.total_executor_seconds == pytest.approx(
            pool_a.total_executor_seconds + pool_b.total_executor_seconds
        )
        assert cluster.idle_capacity_seconds == pytest.approx(
            pool_b.idle_capacity_seconds
        )
        assert cluster.total_dollar_cost == pytest.approx(
            pool_a.total_dollar_cost + pool_b.total_dollar_cost
        )
        assert cluster.provisioned_dollar_cost == pytest.approx(
            pool_a.provisioned_dollar_cost + pool_b.provisioned_dollar_cost
        )

    def test_latency_and_delay_cover_all_pools(self):
        _, _, cluster = self.build()
        assert cluster.p99_latency == pytest.approx(
            max(r.latency for r in cluster.records), rel=0.02
        )
        assert cluster.max_queue_delay == 10.0
        assert 0.0 < cluster.utilization() <= 1.0

    def test_summary_and_describe(self):
        _, _, cluster = self.build()
        summary = cluster.summary()
        assert summary["n_pools"] == 2.0
        assert summary["n_queries"] == 2.0
        assert summary["prediction_cache_hit_rate"] == 0.5
        report = cluster.describe()
        assert "pool 0" in report and "pool 1" in report
        assert "idle capacity cost" in report

    def test_capacity_respected_requires_every_pool(self):
        pool_a, pool_b, cluster = self.build()
        assert cluster.capacity_respected
        pool_a.pool_skyline.record(300.0, 99)
        assert not cluster.capacity_respected

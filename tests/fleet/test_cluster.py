"""Sharded-fleet tests: parity with the single-pool engine, routing,
autoscaling behavior under load, and capacity invariants."""

import pytest

from repro.fleet import (
    AutoscalerConfig,
    CapacityArbiter,
    CostAwareRouter,
    FleetConfig,
    FleetEngine,
    LeastQueuedRouter,
    PoolSpec,
    Prediction,
    QueryArrival,
    RoundRobinRouter,
    ShardedFleet,
    poisson_arrivals,
    static_allocator,
)
from repro.engine.allocation import DynamicAllocation
from repro.workloads.generator import Workload

QIDS = ("q1", "q2", "q3", "q5", "q94")


@pytest.fixture(scope="module")
def workload():
    return Workload(scale_factor=50, query_ids=QIDS)


@pytest.fixture(scope="module")
def stream():
    return poisson_arrivals(QIDS, n_queries=40, rate_qps=1.5, seed=3)


class TestShardedOfOneParity:
    """The layer's honesty contract: one static pool ≡ FleetEngine."""

    def assert_parity(self, sharded, fleet):
        pool = sharded.pools[0]
        assert pool.records == fleet.records
        assert pool.pool_skyline.points == fleet.pool_skyline.points
        assert pool.summary() == fleet.summary()
        assert sharded.p95_latency == fleet.p95_latency
        assert sharded.total_dollar_cost == fleet.total_dollar_cost

    @pytest.mark.parametrize(
        "router", [None, RoundRobinRouter(), LeastQueuedRouter(), CostAwareRouter()]
    )
    def test_contended_stream_bit_identical(self, workload, stream, router):
        fleet = FleetEngine(workload, capacity=24, allocator=static_allocator(8))
        sharded = ShardedFleet(
            workload, [PoolSpec(capacity=24)], static_allocator(8), router=router
        )
        self.assert_parity(sharded.serve(stream), fleet.serve(stream))

    def test_parity_holds_under_dynamic_scaling(self, workload, stream):
        config = FleetConfig(
            idle_release_timeout=5.0,
            scaling=lambda budget: DynamicAllocation(1, 2 * budget, idle_timeout=10.0),
        )
        fleet = FleetEngine(
            workload, capacity=24, allocator=static_allocator(4), config=config
        )
        sharded = ShardedFleet(workload, [24], static_allocator(4), config=config)
        self.assert_parity(sharded.serve(stream), fleet.serve(stream))

    def test_parity_holds_with_prediction_overhead(self, workload):
        def slow_allocator(query_id, plan):
            return Prediction(executors=6, cached=False, seconds=1.5)

        arrivals = [QueryArrival(i, "q1", i, float(i)) for i in range(5)]
        fleet = FleetEngine(workload, capacity=16, allocator=slow_allocator)
        sharded = ShardedFleet(workload, [16], slow_allocator)
        self.assert_parity(sharded.serve(arrivals), fleet.serve(arrivals))


class TestClusterValidation:
    def test_empty_cluster_rejected(self, workload):
        with pytest.raises(ValueError, match="at least one pool"):
            ShardedFleet(workload, [], static_allocator(4))

    def test_empty_stream_rejected(self, workload):
        with pytest.raises(ValueError, match="empty arrival stream"):
            ShardedFleet(workload, [8, 8], static_allocator(4)).serve([])

    def test_bad_pool_capacity_rejected(self):
        with pytest.raises(ValueError):
            PoolSpec(capacity=0)

    def test_initial_capacity_outside_autoscaler_range_rejected(self):
        with pytest.raises(ValueError, match="min_capacity, max_capacity"):
            PoolSpec(
                capacity=4,
                autoscaler=AutoscalerConfig(min_capacity=8, max_capacity=32),
            )

    def test_router_picking_bogus_pool_rejected(self, workload):
        class Bogus:
            name = "bogus"

            def pick(self, request, pools):
                return 7

        with pytest.raises(ValueError, match="picked pool 7"):
            ShardedFleet(workload, [8, 8], static_allocator(4), router=Bogus()).serve(
                [QueryArrival(0, "q1", 0, 0.0)]
            )


class TestSaturation:
    def test_all_pools_saturated_queues_instead_of_dropping(self, workload):
        """A burst far beyond total capacity must queue and eventually be
        served in full — no arrival is ever dropped."""
        arrivals = [QueryArrival(i, "q1", i, 0.0) for i in range(12)]
        metrics = ShardedFleet(
            workload, [8, 8], static_allocator(8), router=LeastQueuedRouter()
        ).serve(arrivals)
        assert metrics.n_queries == 12
        assert metrics.capacity_respected
        delays = [r.queue_delay for r in metrics.records]
        assert sum(d == 0.0 for d in delays) == 2  # one per pool starts at once
        assert sum(d > 0.0 for d in delays) == 10  # the rest waited, none lost

    def test_budget_clamped_to_largest_pool(self, workload):
        """A budget bigger than any pool still gets served, clamped."""
        metrics = ShardedFleet(workload, [4, 6], static_allocator(64)).serve(
            [QueryArrival(0, "q1", 0, 0.0)]
        )
        assert metrics.records[0].executors_granted <= 6
        assert metrics.capacity_respected


class TestRoutingBehavior:
    def test_round_robin_spreads_uniformly(self, workload):
        arrivals = [QueryArrival(i, "q1", i, 40.0 * i) for i in range(6)]
        metrics = ShardedFleet(
            workload, [16, 16, 16], static_allocator(4), router=RoundRobinRouter()
        ).serve(arrivals)
        assert metrics.queries_per_pool() == [2, 2, 2]

    def test_cost_aware_avoids_backlogged_pool(self, workload):
        """Back-to-back big queries must not convoy on one pool."""
        arrivals = [QueryArrival(i, "q94", i, float(i)) for i in range(4)]
        metrics = ShardedFleet(
            workload,
            [16, 16],
            static_allocator(16),
            router=CostAwareRouter(),
        ).serve(arrivals)
        spread = metrics.queries_per_pool()
        assert sorted(spread) == [2, 2]
        # and the informed placement beats convoying them on one pool
        convoy = ShardedFleet(
            workload, [16, 16], static_allocator(16), router=_PinRouter()
        ).serve(arrivals)
        assert metrics.p95_latency < convoy.p95_latency


class _PinRouter:
    name = "pin"

    def pick(self, request, pools):
        return 0


class TestAutoscaling:
    AUTO = AutoscalerConfig(
        min_capacity=8,
        max_capacity=48,
        scale_up_step=8,
        scale_down_step=4,
        scale_up_lag_s=10.0,
        scale_down_cooldown_s=30.0,
        queue_delay_threshold_s=3.0,
    )

    def test_budget_above_initial_capacity_scales_up_instead_of_stalling(
        self, workload
    ):
        """Regression: a budget above every pool's *initial* capacity
        (but within the autoscaler ceiling) queued forever — the tick
        chain that drives the autoscaler only started at the first
        admission, which itself needed the scale-up."""
        metrics = ShardedFleet(
            workload,
            [
                PoolSpec(
                    capacity=4,
                    autoscaler=AutoscalerConfig(min_capacity=4, max_capacity=32),
                )
            ],
            static_allocator(8),
        ).serve([QueryArrival(0, "q1", 0, 0.0)])
        record = metrics.records[0]
        assert record.executors_granted == 8
        assert record.queue_delay > 0  # waited out threshold + lag
        assert metrics.capacity_respected

    def test_pool_grows_under_pressure_and_invariant_holds(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=50, rate_qps=2.0, seed=7)
        metrics = ShardedFleet(
            workload,
            [PoolSpec(capacity=8, autoscaler=self.AUTO) for _ in range(2)],
            static_allocator(8),
            router=CostAwareRouter(),
        ).serve(arrivals)
        assert metrics.n_queries == 50
        assert metrics.capacity_respected
        for pool in metrics.pools:
            assert pool.capacity_skyline is not None
            assert pool.capacity > 8  # it scaled
            assert pool.idle_capacity_seconds >= 0.0

    def test_scale_up_is_lagged_not_instant(self, workload):
        """Capacity requested at t is unusable before t + lag: a burst at
        t=0 on a minimal pool pays queueing through the whole window."""
        arrivals = [QueryArrival(i, "q1", i, 0.0) for i in range(4)]
        lagged = AutoscalerConfig(
            min_capacity=8,
            max_capacity=32,
            scale_up_step=24,
            scale_up_lag_s=25.0,
            queue_delay_threshold_s=1.0,
        )
        metrics = ShardedFleet(
            workload,
            [PoolSpec(capacity=8, autoscaler=lagged)],
            static_allocator(8),
        ).serve(arrivals)
        pool = metrics.pools[0]
        assert pool.capacity_skyline.points[0] == (0.0, 8)
        growth_time, grown = pool.capacity_skyline.points[1]
        # Capacity requested at the first tick (~1 s) lands only after
        # the provisioning lag.
        assert grown > 8
        assert growth_time >= lagged.scale_up_lag_s
        # The queries that queued past base-capacity turnover were
        # admitted exactly when the lagged capacity came online.
        scale_up_admits = [
            r for r in metrics.records if r.admit_time == growth_time
        ]
        assert len(scale_up_admits) == 2

    def test_unrouted_pool_still_bills_its_provisioned_floor(self, workload):
        """Regression: billing windows were derived from each pool's own
        served records, so an autoscaled pool the router never picked
        billed $0 despite sitting provisioned at its floor all run."""
        metrics = ShardedFleet(
            workload,
            [PoolSpec(capacity=8, autoscaler=self.AUTO) for _ in range(2)],
            static_allocator(4),
            router=RoundRobinRouter(),
        ).serve([QueryArrival(0, "q1", 0, 0.0)])
        assert metrics.queries_per_pool() == [1, 0]
        used, idle_pool = metrics.pools
        span = metrics.makespan
        assert idle_pool.provisioned_executor_seconds == pytest.approx(8 * span)
        assert idle_pool.idle_capacity_seconds == pytest.approx(8 * span)
        assert idle_pool.total_dollar_cost > 0
        # and the used pool's window is the cluster's, not its own
        assert used.provisioned_executor_seconds >= 8 * span

    def test_scale_down_returns_to_floor_after_drain(self, workload):
        arrivals = [QueryArrival(0, "q1", 0, 0.0), QueryArrival(1, "q1", 1, 400.0)]
        metrics = ShardedFleet(
            workload,
            [PoolSpec(capacity=16, autoscaler=self.AUTO)],
            static_allocator(8),
        ).serve(arrivals)
        pool = metrics.pools[0]
        final_capacity = pool.capacity_skyline.points[-1][1]
        assert final_capacity < 16  # the idle gap shed capacity
        assert final_capacity >= self.AUTO.min_capacity


class TestScaleDownRace:
    def test_arbiter_resize_never_revokes_outstanding_grants(self):
        """The pool invariant under a shrink racing in-flight grants:
        capacity clamps at in_use, nothing is clawed back."""
        arbiter = CapacityArbiter(16, max_capacity=32)
        got = arbiter.try_acquire(0, 0, 12)  # grant still provisioning
        assert got == 12
        assert arbiter.resize(4) == 12  # clamped at the outstanding grant
        assert arbiter.in_use == 12
        assert arbiter.free == 0
        # the grant is intact and releasable
        assert arbiter.release(0, 12) == 12
        assert arbiter.resize(4) == 4  # now the shrink lands

    def test_resize_clamped_to_max_capacity(self):
        arbiter = CapacityArbiter(8, max_capacity=16)
        assert arbiter.resize(64) == 16

    def test_resize_rejects_nonpositive(self):
        arbiter = CapacityArbiter(8)
        with pytest.raises(ValueError):
            arbiter.resize(0)

    def test_inflight_grant_race_end_to_end(self, workload):
        """Scale-down eligibility exactly while a query's grant is still
        provisioning (executors not yet arrived): the run must complete
        and the capacity skyline never dips below reserved capacity."""
        eager = AutoscalerConfig(
            min_capacity=1,
            max_capacity=16,
            scale_down_step=16,
            scale_down_cooldown_s=0.0,
            low_utilization=0.99,
            high_utilization=1.0,
        )
        # in_use 8 of 16 = 50% < 99%: eligible to shrink on the very
        # first tick, ~1 s after admission — inside the provisioning
        # ramp of the admitted 8-executor grant.
        metrics = ShardedFleet(
            workload,
            [PoolSpec(capacity=16, autoscaler=eager)],
            static_allocator(8),
        ).serve([QueryArrival(0, "q1", 0, 0.0)])
        assert metrics.n_queries == 1
        assert metrics.capacity_respected
        pool = metrics.pools[0]
        assert pool.capacity_skyline.points[1][1] >= 8  # clamped at grant


class TestDeterminism:
    def test_same_stream_same_cluster_metrics(self, workload, stream):
        def run():
            return ShardedFleet(
                workload,
                [
                    PoolSpec(capacity=8, autoscaler=TestAutoscaling.AUTO),
                    PoolSpec(capacity=16),
                ],
                static_allocator(6),
                router=CostAwareRouter(),
            ).serve(stream)

        first, second = run(), run()
        assert first.summary() == second.summary()
        assert first.pool_of == second.pool_of
        assert first.records == second.records

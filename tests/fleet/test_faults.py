"""Fleet fault tolerance: determinism, revocation, retries, spot economics.

The behavioural contracts of serving under an active
:class:`~repro.engine.faults.FaultPlan`:

- **determinism regression** — two serves with the same seed are
  byte-identical, injected faults included; a different seed genuinely
  differs.  This flushes out any RNG not derived from the run seed.
- **grants survive crashes** — a failed executor is replaced through the
  provisioning ramp against the same arbiter reservation; the pool
  invariant holds at every instant and fully drains at the end.
- **retries** — killed in-flight work re-executes and the query still
  finishes; wasted work is ledgered.
- **spot economics** — an all-spot pool with no reclamation risk is pure
  savings at bit-identical physics; reclamation churn is counted
  separately from crashes.
"""

import json

import pytest

from repro.engine.allocation import DynamicAllocation
from repro.engine.faults import FaultPlan, SpotMarket
from repro.fleet.arrivals import QueryArrival, poisson_arrivals
from repro.fleet.cluster import ShardedFleet
from repro.fleet.engine import FleetConfig, FleetEngine, static_allocator
from repro.workloads.generator import Workload

QIDS = ("q1", "q2", "q3", "q5", "q94")


@pytest.fixture(scope="module")
def workload():
    return Workload(scale_factor=50, query_ids=QIDS)


@pytest.fixture(scope="module")
def arrivals():
    return poisson_arrivals(QIDS, n_queries=16, rate_qps=0.5, seed=3)


CHURN = FaultPlan(
    seed=5,
    crash_rate=1.0 / 300.0,
    straggler_rate=0.1,
    spot=SpotMarket(fraction=0.5, discount=0.35, reclaim_rate=1.0 / 300.0),
)


def serve(workload, arrivals, plan, capacity=32, budget=8, scaling=None):
    return FleetEngine(
        workload,
        capacity=capacity,
        allocator=static_allocator(budget),
        config=FleetConfig(faults=plan, scaling=scaling),
    ).serve(arrivals)


def serialized(metrics):
    """Byte-stable digest of a serve: summary + per-record fault ledger."""
    blob = {
        "summary": metrics.summary(),
        "records": [
            {
                "query_id": r.query_id,
                "admit": r.admit_time,
                "finish": r.finish_time,
                "auc": r.auc,
                "skyline": r.skyline.points,
                "faults": None if r.fault_stats is None else r.fault_stats.as_dict(),
            }
            for r in metrics.records
        ],
    }
    return json.dumps(blob, sort_keys=True)


class TestDeterminismRegression:
    def test_same_seed_serves_byte_identical(self, workload, arrivals):
        first = serve(workload, arrivals, CHURN)
        second = serve(workload, arrivals, CHURN)
        assert first.fault_stats.failures > 0  # the plan actually bites
        assert serialized(first) == serialized(second)

    def test_different_seed_differs(self, workload, arrivals):
        first = serve(workload, arrivals, CHURN)
        other = serve(
            workload,
            arrivals,
            FaultPlan(
                seed=CHURN.seed + 1,
                crash_rate=CHURN.crash_rate,
                straggler_rate=CHURN.straggler_rate,
                spot=CHURN.spot,
            ),
        )
        assert serialized(first) != serialized(other)

    def test_sharded_fleet_same_seed_byte_identical(self, workload, arrivals):
        def run():
            return ShardedFleet(
                workload,
                [16, 16],
                static_allocator(8),
                config=FleetConfig(faults=CHURN),
            ).serve(arrivals)

        first, second = run(), run()
        assert first.capacity_respected
        assert serialized(first) == serialized(second)


class TestCrashSemantics:
    def test_grant_survives_crash_and_pool_drains(self, workload, arrivals):
        metrics = serve(workload, arrivals, CHURN)
        stats = metrics.fault_stats
        assert metrics.n_queries == len(arrivals)
        assert metrics.capacity_respected
        assert stats.replacements == stats.failures
        # the reserved-capacity skyline returns to zero: every grant —
        # crashed, replaced, or idle-released — found its way back
        assert metrics.pool_skyline.points[-1][1] == 0

    def test_retries_rerun_killed_work(self, workload):
        # One long query on a small fleet with a vicious crash rate: work
        # is guaranteed to be in flight when executors die.
        plan = FaultPlan(seed=2, crash_rate=1.0 / 60.0)
        metrics = serve(workload, [QueryArrival(0, "q94", 0, 0.0)], plan)
        stats = metrics.fault_stats
        assert stats.failures > 0
        assert stats.task_retries > 0
        assert stats.wasted_task_seconds > 0.0
        baseline = serve(workload, [QueryArrival(0, "q94", 0, 0.0)], None)
        # re-executed work and replacement ramps cost real time
        assert metrics.records[0].latency > baseline.records[0].latency

    def test_no_replacement_returns_capacity_to_pool(self, workload):
        # With replacement off, a crashed slot goes back to the pool; a
        # scaling policy wins capacity back and the query still finishes.
        plan = FaultPlan(seed=2, crash_rate=1.0 / 120.0, replace_failed=False)
        metrics = serve(
            workload,
            [QueryArrival(0, "q94", 0, 0.0)],
            plan,
            scaling=lambda budget: DynamicAllocation(1, 32, idle_timeout=10.0),
        )
        stats = metrics.fault_stats
        assert stats.failures > 0
        assert stats.replacements == 0
        assert metrics.capacity_respected
        assert metrics.pool_skyline.points[-1][1] == 0


class TestSpotEconomics:
    def test_riskless_spot_is_pure_savings(self, workload, arrivals):
        baseline = serve(workload, arrivals, None)
        market = SpotMarket(fraction=1.0, discount=0.35, reclaim_rate=0.0)
        spot = serve(workload, arrivals, FaultPlan(seed=1, spot=market))
        # identical physics, bit for bit ...
        assert spot.summary()["makespan_s"] == baseline.summary()["makespan_s"]
        assert [r.skyline.points for r in spot.records] == [
            r.skyline.points for r in baseline.records
        ]
        # ... at the discounted price
        assert spot.fault_stats.ondemand_executor_seconds == 0.0
        assert spot.total_dollar_cost == pytest.approx(
            0.35 * baseline.total_dollar_cost, rel=1e-9
        )

    def test_reclamations_counted_separately_from_crashes(self, workload, arrivals):
        market = SpotMarket(fraction=1.0, discount=0.35, reclaim_rate=1.0 / 120.0)
        metrics = serve(workload, arrivals, FaultPlan(seed=4, spot=market))
        stats = metrics.fault_stats
        assert stats.reclamations > 0
        assert stats.crashes == 0
        assert stats.spot_executor_seconds > 0.0
        assert metrics.spot_dollar_cost > 0.0
        assert metrics.summary()["executor_failures"] == float(stats.reclamations)

    def test_dollar_split_sums_to_total(self, workload, arrivals):
        metrics = serve(workload, arrivals, CHURN)
        assert metrics.spot_dollar_cost + metrics.ondemand_dollar_cost == (
            pytest.approx(metrics.total_dollar_cost, rel=1e-9)
        )


class TestClusterRollup:
    def test_cluster_metrics_aggregate_fault_ledgers(self, workload, arrivals):
        cluster = ShardedFleet(
            workload,
            [16, 16],
            static_allocator(8),
            config=FleetConfig(faults=CHURN),
        ).serve(arrivals)
        merged = cluster.fault_stats
        assert merged.failures == sum(p.executor_failures for p in cluster.pools)
        assert cluster.task_retries == sum(p.task_retries for p in cluster.pools)
        assert cluster.wasted_work_seconds == pytest.approx(
            sum(p.wasted_work_seconds for p in cluster.pools)
        )
        assert cluster.spot_executor_seconds + cluster.ondemand_executor_seconds == (
            pytest.approx(cluster.total_executor_seconds, rel=1e-9)
        )
        assert cluster.spot_dollar_cost + cluster.ondemand_dollar_cost == (
            pytest.approx(cluster.total_dollar_cost, rel=1e-9)
        )
        summary = cluster.summary()
        assert summary["executor_failures"] == float(merged.failures)
        assert summary["task_retries"] == float(merged.task_retries)
        report = cluster.describe()
        assert "executor failures" in report
        assert "spot / on-demand" in report

    def test_unperturbed_cluster_reports_zero_ledger(self, workload, arrivals):
        cluster = ShardedFleet(workload, [16, 16], static_allocator(8)).serve(
            arrivals
        )
        assert cluster.fault_stats.failures == 0
        assert cluster.summary()["wasted_work_seconds"] == 0.0
        assert "executor failures" not in cluster.describe()

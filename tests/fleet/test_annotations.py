"""Regression: fleet records carry allocator metadata uniformly.

Every driver (single pool and sharded) must attach the allocator's
policy name and its pre-clamp decision to each QueryRecord — the fix for
records that previously said *what* was granted but never *who decided*
or what the decision was before the pool truncated it.
"""

import pytest

from repro.core.ppm import PowerLawPPM
from repro.fleet import (
    FleetEngine,
    PoolSpec,
    PredictionService,
    ShardedFleet,
    allocator_annotations,
    poisson_arrivals,
    static_allocator,
)
from repro.obs import RingBufferTracer, TraceAnalyzer


class FixedScorer:
    """Scorer with a constant curve (keeps the elbow deterministic)."""

    def predict_ppm(self, features):
        return PowerLawPPM(a=-0.8, b=400.0, m=10.0)


@pytest.fixture(scope="module")
def arrivals(workload_small):
    return poisson_arrivals(
        workload_small.query_ids[:6], n_queries=12, rate_qps=0.5, seed=1
    )


def test_static_records_annotated(workload_small, arrivals):
    metrics = FleetEngine(
        workload_small, capacity=16, allocator=static_allocator(40)
    ).serve(arrivals)
    for record in metrics.records:
        assert record.annotations["policy"] == "static"
        # The pre-clamp decision survives next to the truncated grant.
        assert record.annotations["predicted_executors"] == 40
        assert record.executors_granted == 16


def test_prediction_records_annotated(workload_small, arrivals):
    service = PredictionService(FixedScorer())
    metrics = FleetEngine(
        workload_small, capacity=32, allocator=service.allocate
    ).serve(arrivals)
    for record in metrics.records:
        assert record.annotations["policy"] == "prediction"
        assert record.annotations["predicted_executors"] >= 1


def test_sharded_records_annotated_identically(workload_small, arrivals):
    single = FleetEngine(
        workload_small, capacity=16, allocator=static_allocator(6)
    ).serve(arrivals)
    sharded = ShardedFleet(
        workload_small, [PoolSpec(16)], static_allocator(6)
    ).serve(arrivals)
    assert [r.annotations for r in sharded.records] == [
        r.annotations for r in single.records
    ]


def test_annotations_match_traced_policy(workload_small, arrivals):
    """The record-level annotations and the trace's query_predict events
    report the same decision."""
    tracer = RingBufferTracer()
    metrics = FleetEngine(
        workload_small,
        capacity=16,
        allocator=static_allocator(6),
        tracer=tracer,
    ).serve(arrivals)
    analyzer = TraceAnalyzer(tracer.events)
    for q, record in enumerate(metrics.records):
        timeline = analyzer.timeline(q)
        assert timeline.policy == record.annotations["policy"]
        assert (
            timeline.predicted_executors
            == record.annotations["predicted_executors"]
        )


def test_allocator_annotations_helper():
    assert allocator_annotations(static_allocator(4), 4) == {
        "policy": "static",
        "predicted_executors": 4,
    }
    assert allocator_annotations(lambda query_id, plan: 2, 2)["policy"] == "custom"

"""Arrival-process tests: determinism, ordering, trace shape."""

import numpy as np
import pytest

from repro.fleet.arrivals import poisson_arrivals, trace_arrivals
from repro.workloads.production import generate_production_trace

QIDS = ("q1", "q2", "q3", "q94")


class TestPoissonArrivals:
    def test_stream_shape(self):
        arrivals = poisson_arrivals(QIDS, n_queries=50, rate_qps=0.5, seed=1)
        assert len(arrivals) == 50
        assert [a.index for a in arrivals] == list(range(50))
        assert arrivals[0].arrival_time == 0.0
        times = [a.arrival_time for a in arrivals]
        assert times == sorted(times)
        assert {a.query_id for a in arrivals} <= set(QIDS)

    def test_rate_controls_density(self):
        slow = poisson_arrivals(QIDS, n_queries=200, rate_qps=0.1, seed=2)
        fast = poisson_arrivals(QIDS, n_queries=200, rate_qps=10.0, seed=2)
        assert fast[-1].arrival_time < slow[-1].arrival_time

    def test_deterministic_given_seed(self):
        a = poisson_arrivals(QIDS, n_queries=30, rate_qps=1.0, seed=7)
        b = poisson_arrivals(QIDS, n_queries=30, rate_qps=1.0, seed=7)
        assert a == b
        c = poisson_arrivals(QIDS, n_queries=30, rate_qps=1.0, seed=8)
        assert a != c

    def test_multiple_apps(self):
        arrivals = poisson_arrivals(
            QIDS, n_queries=100, rate_qps=1.0, n_apps=5, seed=0
        )
        apps = {a.app_id for a in arrivals}
        assert len(apps) > 1
        assert all(0 <= app < 5 for app in apps)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            poisson_arrivals(QIDS, n_queries=0, rate_qps=1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(QIDS, n_queries=5, rate_qps=0.0)
        with pytest.raises(ValueError):
            poisson_arrivals((), n_queries=5, rate_qps=1.0)


class TestTraceArrivals:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_production_trace(n_applications=300, seed=5)

    def test_stream_shape(self, trace):
        arrivals = trace_arrivals(trace, QIDS, n_queries=120, seed=3)
        assert len(arrivals) == 120
        assert arrivals[0].arrival_time == 0.0
        times = [a.arrival_time for a in arrivals]
        assert times == sorted(times)

    def test_deterministic_given_seed(self, trace):
        a = trace_arrivals(trace, QIDS, n_queries=80, seed=11)
        b = trace_arrivals(trace, QIDS, n_queries=80, seed=11)
        assert a == b

    def test_apps_issue_bursts(self, trace):
        """The production shape survives the replay: most queries belong
        to apps that issued more than one query (Figure 2a)."""
        arrivals = trace_arrivals(trace, QIDS, n_queries=200, seed=3)
        counts: dict[int, int] = {}
        for a in arrivals:
            counts[a.app_id] = counts.get(a.app_id, 0) + 1
        multi = sum(c for c in counts.values() if c > 1)
        assert multi / len(arrivals) > 0.5

    def test_burst_cap_respected(self, trace):
        arrivals = trace_arrivals(
            trace, QIDS, n_queries=300, max_queries_per_app=4, seed=9
        )
        counts: dict[int, int] = {}
        for a in arrivals:
            counts[a.app_id] = counts.get(a.app_id, 0) + 1
        # An app can be sampled more than once; the cap bounds one burst,
        # so per-app totals stay small multiples of it.
        assert max(counts.values()) <= 4 * 4

    def test_mean_gap_tracks_parameter(self, trace):
        tight = trace_arrivals(
            trace, QIDS, n_queries=150, mean_intra_app_gap=1.0, seed=2
        )
        loose = trace_arrivals(
            trace, QIDS, n_queries=150, mean_intra_app_gap=60.0, seed=2
        )
        assert np.ptp([a.arrival_time for a in tight]) < np.ptp(
            [a.arrival_time for a in loose]
        )

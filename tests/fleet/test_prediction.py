"""Prediction-service tests: memo cache, batching, portable runtime."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, QueryFeatures
from repro.core.ppm import PowerLawPPM
from repro.export.format import save_parameter_model
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer
from repro.fleet.prediction import PredictionService
from repro.workloads.generator import Workload


class CountingScorer:
    """Fixed-curve scorer that counts inference calls."""

    def __init__(self):
        self.calls = 0

    def predict_ppm(self, features):
        self.calls += 1
        return PowerLawPPM(a=-0.8, b=400.0, m=10.0)


def features(seed: float) -> QueryFeatures:
    values = np.full(len(FEATURE_NAMES), seed, dtype=float)
    return QueryFeatures(values=values)


class TestMemoCache:
    def test_hit_and_miss_counts(self):
        scorer = CountingScorer()
        service = PredictionService(scorer)
        f1, f2 = features(1.0), features(2.0)
        service.predict(f1)
        service.predict(f2)
        service.predict(f1)
        service.predict(f1)
        assert service.misses == 2
        assert service.hits == 2
        assert service.cache_size == 2
        assert scorer.calls == 2  # inference only on misses

    def test_cached_flag_and_overhead(self):
        service = PredictionService(CountingScorer())
        first = service.predict(features(1.0))
        second = service.predict(features(1.0))
        assert not first.cached
        assert second.cached
        assert first.seconds >= 0.0
        assert service.mean_overhead_seconds() >= 0.0

    def test_identical_plan_identical_prediction(self):
        """Two independent builds of the same query featurize identically,
        so the second is a cache hit with the same executor count."""
        w1 = Workload(scale_factor=50, query_ids=("q3",))
        w2 = Workload(scale_factor=50, query_ids=("q3",))
        service = PredictionService(CountingScorer())
        a = service.predict(w1.optimized_plan("q3"))
        b = service.predict(w2.optimized_plan("q3"))
        assert a.executors == b.executors
        assert not a.cached
        assert b.cached

    def test_clamps_to_range(self):
        # The fixed curve's elbow would land mid-grid; a tight clamp wins.
        service = PredictionService(
            CountingScorer(), min_executors=3, max_executors=3
        )
        assert service.predict(features(1.0)).executors == 3

    def test_invalid_clamp_rejected(self):
        with pytest.raises(ValueError):
            PredictionService(CountingScorer(), min_executors=0)
        with pytest.raises(ValueError):
            PredictionService(
                CountingScorer(), min_executors=8, max_executors=4
            )


class TestAllocateFeaturizationMemo:
    def test_recurring_query_id_skips_plan_walk(self):
        scorer = CountingScorer()
        service = PredictionService(scorer)
        workload = Workload(scale_factor=10, query_ids=("q1", "q2"))
        plan = workload.optimized_plan("q1")

        first = service.allocate("q1", plan)
        second = service.allocate("q1", plan)
        assert scorer.calls == 1  # one inference, then signature hits
        assert first.executors == second.executors
        assert second.cached is True
        assert "q1" in service._features_by_query

    def test_changed_plan_for_same_id_is_refeaturized(self):
        scorer = CountingScorer()
        service = PredictionService(scorer)
        small = Workload(scale_factor=10, query_ids=("q1",))
        big = Workload(scale_factor=100, query_ids=("q1",))

        service.allocate("q1", small.optimized_plan("q1"))
        pred = service.allocate("q1", big.optimized_plan("q1"))
        # the identity guard must notice the new plan, not serve stale
        # features: the bigger plan has a different signature => a miss
        assert pred.cached is False
        assert scorer.calls == 2
        assert service._features_by_query["q1"][0] is big.optimized_plan("q1")

    def test_allocate_matches_direct_predict(self):
        scorer = CountingScorer()
        service = PredictionService(scorer)
        workload = Workload(scale_factor=10, query_ids=("q1", "q2"))
        via_allocate = service.allocate("q2", workload.optimized_plan("q2"))
        via_predict = PredictionService(CountingScorer()).predict(
            workload.optimized_plan("q2")
        )
        assert via_allocate.executors == via_predict.executors


class TestGenerationAndSwap:
    """The stale-model fix: every cached decision is generation-tagged,
    and a scorer swap invalidates the lot atomically."""

    def test_invalidate_bumps_generation_and_clears_cache(self):
        service = PredictionService(CountingScorer())
        service.predict(features(1.0))
        assert service.generation == 0
        assert service.cache_size == 1
        service.invalidate()
        assert service.generation == 1
        assert service.cache_size == 0

    def test_invalidate_keeps_featurization_memo(self):
        # Features are compile-time plan properties, model-independent:
        # a model swap must not force recurring queries to re-walk plans.
        service = PredictionService(CountingScorer())
        workload = Workload(scale_factor=10, query_ids=("q1",))
        service.allocate("q1", workload.optimized_plan("q1"))
        service.invalidate()
        assert service.features_memo_len == 1

    def test_stale_generation_entry_is_a_miss(self):
        # Belt and braces: even an entry that somehow survived the clear
        # is dead, because its generation tag no longer matches.
        scorer = CountingScorer()
        service = PredictionService(scorer)
        service.predict(features(1.0))
        key, entry = next(iter(service._cache.items()))
        service.invalidate()
        service._cache[key] = entry  # resurrect a generation-0 entry
        pred = service.predict(features(1.0))
        assert pred.cached is False
        assert scorer.calls == 2
        assert service._cache[key][0] == 1  # re-tagged at the new generation

    def test_swap_scorer_serves_the_new_model(self):
        class SlowerScorer(CountingScorer):
            def predict_ppm(self, features):
                self.calls += 1
                return PowerLawPPM(a=-0.8, b=800.0, m=20.0)

        service = PredictionService(CountingScorer())
        before = service.predict(features(1.0))
        generation = service.swap_scorer(SlowerScorer())
        assert generation == 1
        assert service.generation == 1
        after = service.predict(features(1.0))
        # Without invalidation this would be a cache hit serving the old
        # model's decision — the exact stale-model bug.
        assert after.cached is False
        assert (
            after.estimated_runtime_seconds != before.estimated_runtime_seconds
        )

    def test_swap_reprobes_batch_capability(self):
        class BatchScorer(CountingScorer):
            def predict_ppm_batch(self, matrix):
                return [self.predict_ppm(None) for _ in np.atleast_2d(matrix)]

        service = PredictionService(CountingScorer())
        assert service.batched is False
        service.swap_scorer(BatchScorer())
        assert service.batched is True
        service.swap_scorer(CountingScorer())
        assert service.batched is False

    def test_swap_rearms_fallback_announcement(self):
        from repro.obs.trace import RingBufferTracer

        tracer = RingBufferTracer()
        service = PredictionService(CountingScorer(), tracer=tracer)
        service.predict_batch([features(1.0)])
        service.swap_scorer(CountingScorer())
        service.predict_batch([features(2.0)])
        kinds = [e.kind for e in tracer.events]
        # Once per scorer lifetime: the swap started a new lifetime.
        assert kinds.count("prediction_fallback") == 2


class TestFeaturesMemoLRU:
    """The unbounded-memo fix: ``_features_by_query`` is a bounded LRU."""

    def test_bound_enforced_with_lru_eviction(self):
        service = PredictionService(CountingScorer(), features_memo_size=4)
        workload = Workload(scale_factor=10, query_ids=("q1",))
        plan = workload.optimized_plan("q1")
        for i in range(12):
            service.allocate(f"id{i}", plan)
        assert service.features_memo_len == 4
        assert list(service._features_by_query) == ["id8", "id9", "id10", "id11"]

    def test_hit_refreshes_recency(self):
        service = PredictionService(CountingScorer(), features_memo_size=2)
        workload = Workload(scale_factor=10, query_ids=("q1",))
        plan = workload.optimized_plan("q1")
        service.allocate("a", plan)
        service.allocate("b", plan)
        service.allocate("a", plan)  # refresh: "a" is now most recent
        service.allocate("c", plan)  # evicts "b", not "a"
        assert list(service._features_by_query) == ["a", "c"]

    def test_eviction_only_costs_refeaturization(self):
        scorer = CountingScorer()
        service = PredictionService(scorer, features_memo_size=1)
        workload = Workload(scale_factor=10, query_ids=("q1",))
        plan = workload.optimized_plan("q1")
        first = service.allocate("a", plan)
        service.allocate("b", plan)  # evicts "a"
        again = service.allocate("a", plan)  # re-featurizes, same signature
        assert again.executors == first.executors
        assert again.cached is True
        assert scorer.calls == 1  # the signature cache still absorbed it
        assert service.misses == 1
        assert service.hits == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionService(CountingScorer(), features_memo_size=0)


class TestBatching:
    def test_batch_matches_sequential(self):
        plans = [features(float(i % 3)) for i in range(7)]
        sequential = PredictionService(CountingScorer())
        one_by_one = [sequential.predict(p).executors for p in plans]
        batched = PredictionService(CountingScorer())
        batch = batched.predict_batch(plans)
        assert [p.executors for p in batch] == one_by_one
        assert batched.hits == sequential.hits
        assert batched.misses == sequential.misses

    def test_repeats_within_batch_hit_the_cache(self):
        scorer = CountingScorer()
        service = PredictionService(scorer)
        out = service.predict_batch(
            [features(1.0), features(1.0), features(2.0)]
        )
        assert [p.cached for p in out] == [False, True, False]
        assert scorer.calls == 2

    def test_batched_flag_reflects_scorer_capability(self):
        assert PredictionService(CountingScorer()).batched is False

        class BatchScorer(CountingScorer):
            def predict_ppm_batch(self, matrix):
                return [
                    self.predict_ppm(None) for _ in np.atleast_2d(matrix)
                ]

        assert PredictionService(BatchScorer()).batched is True

    def test_fallback_emits_one_trace_event(self):
        from repro.obs.trace import RingBufferTracer

        tracer = RingBufferTracer()
        service = PredictionService(CountingScorer(), tracer=tracer)
        service.predict_batch([features(1.0), features(2.0)])
        service.predict_batch([features(3.0)])  # second fallback: no event
        kinds = [e.kind for e in tracer.events]
        assert kinds.count("prediction_fallback") == 1
        event = next(
            e for e in tracer.events if e.kind == "prediction_fallback"
        )
        assert event.data["scorer"] == "CountingScorer"
        assert event.data["misses"] == 2

    def test_no_fallback_event_for_batched_scorer(self):
        from repro.obs.trace import RingBufferTracer

        class BatchScorer(CountingScorer):
            def predict_ppm_batch(self, matrix):
                return [
                    PowerLawPPM(a=-0.8, b=400.0, m=10.0)
                    for _ in np.atleast_2d(matrix)
                ]

        tracer = RingBufferTracer()
        service = PredictionService(BatchScorer(), tracer=tracer)
        service.predict_batch([features(1.0), features(2.0)])
        assert all(e.kind != "prediction_fallback" for e in tracer.events)


class TestPortableRuntime:
    """The service in front of the exported-model runtime, as deployed."""

    @pytest.fixture(scope="class")
    def trained(self, tmp_path_factory):
        from repro import AutoExecutor

        qids = ("q1", "q2", "q3", "q5", "q6", "q7", "q8", "q94")
        workload = Workload(scale_factor=50, query_ids=qids)
        system = AutoExecutor(family="power_law").train(workload)
        registry = tmp_path_factory.mktemp("registry")
        save_parameter_model(system.model, registry / "ppm.json")
        scorer = PortablePPMScorer(PortableModelRuntime(registry), "ppm")
        return workload, system, scorer

    def test_portable_matches_in_process_model(self, trained):
        workload, system, scorer = trained
        service = PredictionService(scorer, n_grid=system.n_grid)
        for qid in ("q1", "q94"):
            plan = workload.optimized_plan(qid)
            assert (
                service.predict(plan).executors
                == system.select_executors(plan)
            )

    def test_batch_inference_single_runtime_dispatch(self, trained):
        workload, system, scorer = trained
        service = PredictionService(scorer, n_grid=system.n_grid)
        plans = [workload.optimized_plan(q) for q in workload.query_ids]
        before = len(scorer.runtime.timings["inference"])
        out = service.predict_batch(plans)
        after = len(scorer.runtime.timings["inference"])
        assert after - before == 1  # one batched dispatch for all misses
        expected = [system.select_executors(p) for p in plans]
        assert [p.executors for p in out] == expected

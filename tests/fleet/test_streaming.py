"""Streaming-mode serving: record-mode parity within the sketch bound,
spooling round-trips, config normalization, and O(1) memory."""

import gc
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.faults import FaultPlan, SpotMarket
from repro.engine.stages import Stage, StageGraph
from repro.fleet import (
    FleetConfig,
    FleetEngine,
    PoolSpec,
    QueryArrival,
    ShardedFleet,
    StreamingConfig,
    poisson_arrival_stream,
    poisson_arrivals,
    read_spooled_records,
    static_allocator,
)
from repro.fleet.metrics import QueryRecord
from repro.workloads.generator import Workload

QIDS = ("q1", "q2", "q3", "q5", "q94")
ALPHA = 0.01  # StreamingConfig default relative accuracy


@pytest.fixture(scope="module")
def workload():
    return Workload(scale_factor=50, query_ids=QIDS)


class MicroWorkload:
    """Tiny fixed stage graphs — fast enough for 50k-query serves."""

    def __init__(self):
        self._graphs = {
            "m1": StageGraph(
                stages=[Stage(stage_id=0, num_tasks=2, task_seconds=1.0)],
                query_id="m1",
            ),
            "m2": StageGraph(
                stages=[Stage(stage_id=0, num_tasks=3, task_seconds=0.8)],
                query_id="m2",
            ),
        }

    def optimized_plan(self, query_id):
        return None  # static allocators never read the plan

    def stage_graph(self, query_id):
        return self._graphs[query_id]


def sketch_bracket(latencies, q, alpha=ALPHA):
    """The (lo, hi) order-statistic bracket the sketch quantile must hit.

    Same convention as tests/obs/test_sketch.py: relative error alpha
    against the rank-q order statistic, widened to both neighbours to
    absorb rank ties at bucket boundaries.
    """
    ranks = np.sort(np.asarray(latencies))
    k = int(np.ceil(q / 100 * len(ranks)))
    lo = ranks[max(0, k - 2)]
    hi = ranks[min(len(ranks) - 1, k)]
    return lo * (1 - 2 * alpha), hi * (1 + 2 * alpha)


def assert_streaming_matches_records(streamed, recorded):
    """Exact accumulators equal; percentiles inside the sketch bracket."""
    sr, ss = recorded.summary(), streamed.summary()
    assert set(sr) == set(ss)
    latencies = [r.latency for r in recorded.records]
    delays = [r.queue_delay for r in recorded.records]
    for key, value in sr.items():
        if key.startswith("p") and key.endswith("_latency_s"):
            q = int(key[1:-10])
            lo, hi = sketch_bracket(latencies, q)
            assert lo <= ss[key] <= hi, (key, ss[key], lo, hi)
        elif key == "max_queue_delay_s":
            # Extrema are exact in the streaming accumulators.
            assert ss[key] == sr[key]
        elif key == "mean_queue_delay_s":
            # Means are exact sums; only summation order differs.
            assert ss[key] == pytest.approx(sr[key], rel=1e-9, abs=1e-9)
            assert max(delays, default=0.0) == pytest.approx(
                streamed.max_queue_delay
            )
        else:
            assert ss[key] == pytest.approx(sr[key], rel=1e-9, abs=1e-12), key


class TestConfigNormalization:
    def test_true_means_defaults(self):
        config = FleetConfig(streaming=True)
        assert isinstance(config.streaming, StreamingConfig)
        assert config.streaming.relative_accuracy == ALPHA
        assert config.streaming.spool_dir is None

    def test_false_means_off(self):
        assert FleetConfig(streaming=False).streaming is None
        assert FleetConfig().streaming is None

    def test_explicit_config_passes_through(self):
        streaming = StreamingConfig(relative_accuracy=0.05)
        assert FleetConfig(streaming=streaming).streaming is streaming

    @pytest.mark.parametrize("accuracy", [0.0, 1.0, -0.5, 2.0])
    def test_accuracy_validated(self, accuracy):
        with pytest.raises(ValueError):
            StreamingConfig(relative_accuracy=accuracy)

    def test_record_mode_keeps_records(self, workload):
        metrics = FleetEngine(
            workload, capacity=16, allocator=static_allocator(4)
        ).serve(poisson_arrivals(QIDS, n_queries=10, rate_qps=1.0, seed=0))
        assert len(metrics.records) == 10
        assert metrics.stats is None


class TestStreamValidation:
    def test_out_of_order_stream_rejected(self, workload):
        arrivals = [
            QueryArrival(0, "q1", 0, 5.0),
            QueryArrival(1, "q1", 0, 1.0),
        ]
        engine = FleetEngine(
            workload,
            capacity=16,
            allocator=static_allocator(4),
            config=FleetConfig(streaming=True),
        )
        with pytest.raises(ValueError, match="time-ordered"):
            engine.serve(iter(arrivals))

    def test_empty_stream_rejected(self, workload):
        engine = FleetEngine(
            workload,
            capacity=16,
            allocator=static_allocator(4),
            config=FleetConfig(streaming=True),
        )
        with pytest.raises(ValueError, match="empty"):
            engine.serve(iter([]))
        fleet = ShardedFleet(
            workload,
            [16],
            static_allocator(4),
            config=FleetConfig(streaming=True),
        )
        with pytest.raises(ValueError, match="empty"):
            fleet.serve(iter([]))


class TestEngineParity:
    def test_summary_within_sketch_bound(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=300, rate_qps=2.0, seed=7)
        recorded = FleetEngine(
            workload, capacity=32, allocator=static_allocator(8)
        ).serve(arrivals)
        streamed = FleetEngine(
            workload,
            capacity=32,
            allocator=static_allocator(8),
            config=FleetConfig(streaming=True),
        ).serve(iter(arrivals))
        assert streamed.records == []
        assert streamed.stats is not None
        assert_streaming_matches_records(streamed, recorded)

    def test_generator_and_list_streams_agree(self, workload):
        config = FleetConfig(streaming=True)
        stream = list(
            poisson_arrival_stream(QIDS, n_queries=80, rate_qps=1.0, seed=3)
        )
        a = FleetEngine(
            workload, capacity=24, allocator=static_allocator(6), config=config
        ).serve(iter(stream))
        b = FleetEngine(
            workload, capacity=24, allocator=static_allocator(6), config=config
        ).serve(stream)
        assert a.stats == b.stats

    def test_fault_ledger_parity(self, workload):
        plan = FaultPlan(
            seed=5,
            crash_rate=1 / 5000.0,
            straggler_rate=0.05,
            spot=SpotMarket(fraction=0.5, discount=0.35, reclaim_rate=1 / 2000.0),
        )
        arrivals = poisson_arrivals(QIDS, n_queries=120, rate_qps=1.0, seed=11)
        recorded = FleetEngine(
            workload,
            capacity=24,
            allocator=static_allocator(8),
            config=FleetConfig(faults=plan),
        ).serve(arrivals)
        streamed = FleetEngine(
            workload,
            capacity=24,
            allocator=static_allocator(8),
            config=FleetConfig(faults=plan, streaming=True),
        ).serve(iter(arrivals))
        rf, sf = recorded.fault_stats, streamed.fault_stats
        assert rf.crashes == sf.crashes
        assert rf.reclamations == sf.reclamations
        assert rf.task_retries == sf.task_retries
        assert rf.tasks_started == sf.tasks_started
        assert rf.wasted_task_seconds == pytest.approx(sf.wasted_task_seconds)
        assert rf.billed_executor_seconds == pytest.approx(
            sf.billed_executor_seconds
        )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_queries=st.integers(min_value=5, max_value=60),
        rate=st.floats(min_value=0.2, max_value=4.0),
        capacity=st.integers(min_value=8, max_value=48),
    )
    @settings(max_examples=10, deadline=None)
    def test_percentiles_within_bound_property(
        self, seed, n_queries, rate, capacity
    ):
        workload = Workload(scale_factor=50, query_ids=QIDS)
        arrivals = poisson_arrivals(
            QIDS, n_queries=n_queries, rate_qps=rate, seed=seed
        )
        recorded = FleetEngine(
            workload, capacity=capacity, allocator=static_allocator(6)
        ).serve(arrivals)
        streamed = FleetEngine(
            workload,
            capacity=capacity,
            allocator=static_allocator(6),
            config=FleetConfig(streaming=True),
        ).serve(iter(arrivals))
        assert_streaming_matches_records(streamed, recorded)


class TestClusterParity:
    def test_sharded_summary_within_bound(self, workload):
        arrivals = poisson_arrivals(QIDS, n_queries=300, rate_qps=2.0, seed=7)
        recorded = ShardedFleet(
            workload, [16, 16, 16], static_allocator(8)
        ).serve(arrivals)
        streamed = ShardedFleet(
            workload,
            [16, 16, 16],
            static_allocator(8),
            config=FleetConfig(streaming=True),
        ).serve(iter(arrivals))
        assert streamed.records == []
        assert streamed.pool_of == []
        assert_streaming_matches_records(streamed, recorded)

    def test_autoscaled_pools_stream(self, workload):
        from repro.fleet.autoscaler import AutoscalerConfig

        spec = PoolSpec(
            capacity=8,
            autoscaler=AutoscalerConfig(min_capacity=4, max_capacity=32),
        )
        arrivals = poisson_arrivals(QIDS, n_queries=120, rate_qps=1.0, seed=11)
        recorded = ShardedFleet(
            workload, [spec, spec], static_allocator(8)
        ).serve(arrivals)
        streamed = ShardedFleet(
            workload,
            [spec, spec],
            static_allocator(8),
            config=FleetConfig(streaming=True),
        ).serve(iter(arrivals))
        sr, ss = recorded.summary(), streamed.summary()
        # Idle/provisioned charges come from the capacity tracker; exact.
        assert ss["provisioned_executor_seconds"] == pytest.approx(
            sr["provisioned_executor_seconds"]
        )
        assert ss["idle_capacity_seconds"] == pytest.approx(
            sr["idle_capacity_seconds"]
        )
        assert ss["total_dollar_cost"] == pytest.approx(sr["total_dollar_cost"])


class TestSpooling:
    def test_records_round_trip(self, workload, tmp_path):
        arrivals = poisson_arrivals(QIDS, n_queries=60, rate_qps=1.0, seed=11)
        recorded = FleetEngine(
            workload, capacity=24, allocator=static_allocator(8)
        ).serve(arrivals)
        config = FleetConfig(
            streaming=StreamingConfig(spool_dir=tmp_path / "spool")
        )
        FleetEngine(
            workload, capacity=24, allocator=static_allocator(8), config=config
        ).serve(iter(arrivals))
        spooled = read_spooled_records(tmp_path / "spool" / "pool_000.jsonl")
        assert len(spooled) == 60
        # Spooled records carry no skyline or execution log; compare the
        # serialized fields against the record-mode run.
        by_key = {(r.query_id, r.arrival_time): r for r in recorded.records}
        for record in spooled:
            ref = by_key[(record.query_id, record.arrival_time)]
            assert record.finish_time == ref.finish_time
            assert record.admit_time == ref.admit_time
            assert record.executors_granted == ref.executors_granted
            assert record.auc == ref.auc
            assert record.annotations == ref.annotations

    def test_sharded_spool_one_file_per_pool(self, workload, tmp_path):
        arrivals = poisson_arrivals(QIDS, n_queries=40, rate_qps=1.0, seed=2)
        config = FleetConfig(
            streaming=StreamingConfig(spool_dir=tmp_path / "spool")
        )
        ShardedFleet(workload, [16, 16], static_allocator(8), config=config).serve(
            iter(arrivals)
        )
        files = sorted(p.name for p in (tmp_path / "spool").iterdir())
        assert files == ["pool_000.jsonl", "pool_001.jsonl"]
        total = sum(
            len(read_spooled_records(tmp_path / "spool" / name))
            for name in files
        )
        assert total == 40

    def test_fault_stats_survive_json(self, workload, tmp_path):
        plan = FaultPlan(seed=3, crash_rate=1 / 3000.0)
        config = FleetConfig(
            faults=plan, streaming=StreamingConfig(spool_dir=tmp_path)
        )
        arrivals = poisson_arrivals(QIDS, n_queries=40, rate_qps=1.0, seed=4)
        streamed = FleetEngine(
            workload, capacity=24, allocator=static_allocator(8), config=config
        ).serve(iter(arrivals))
        spooled = read_spooled_records(tmp_path / "pool_000.jsonl")
        folded = sum(
            r.fault_stats.crashes for r in spooled if r.fault_stats is not None
        )
        assert folded == streamed.fault_stats.crashes


class TestMemoryFlatness:
    """Regression for the eager-free audit: per-query state must die as
    queries finish, keeping live objects flat across a 50k-query serve."""

    def test_live_objects_flat_across_50k_serve(self):
        from repro.engine.skyline import Skyline

        samples = []

        def counting_stream():
            # 30 qps keeps the 4x48/budget-2 pools comfortably below
            # saturation: an oversubscribed stream grows the waiting
            # queue, and with it live run state, without bound.
            inner = poisson_arrival_stream(
                ("m1", "m2"), n_queries=50_000, rate_qps=30.0, seed=42
            )
            for i, arrival in enumerate(inner):
                if i and i % 12_500 == 0:
                    gc.collect()
                    records = 0
                    skylines = 0
                    for obj in gc.get_objects():
                        if isinstance(obj, QueryRecord):
                            records += 1
                        elif isinstance(obj, Skyline):
                            skylines += 1
                    samples.append((records, skylines))
                yield arrival

        config = FleetConfig(idle_release_timeout=None, streaming=True)
        metrics = ShardedFleet(
            MicroWorkload(),
            [48, 48, 48, 48],
            static_allocator(2),
            config=config,
        ).serve(counting_stream())
        assert metrics.n_queries == 50_000
        assert metrics.records == []
        assert len(samples) == 3
        for records, skylines in samples:
            # Finished queries leave no record behind; live skylines are
            # bounded by in-flight queries (192 executors / 2 per query),
            # not by how many queries have been served.
            assert records <= 2, samples
            assert skylines <= 300, samples

    def test_features_memo_bounded_across_unique_ids(self, workload):
        """The allocator-side featurization memo obeys its LRU bound
        even when every arrival carries a fresh query id — sampled
        mid-stream, like the live-object counts above, so growth can't
        hide behind an end-of-run assertion."""
        from repro.core.ppm import PowerLawPPM
        from repro.fleet.prediction import PredictionService

        class FixedScorer:
            def predict_ppm(self, features):
                return PowerLawPPM(a=-0.8, b=60.0, m=2.0)

        class RecurringPlan:
            """One real plan behind an endless supply of query ids."""

            def __init__(self, base):
                self._plan = base.optimized_plan("q1")
                self._graph = base.stage_graph("q1")

            def optimized_plan(self, query_id):
                return self._plan

            def stage_graph(self, query_id):
                return self._graph

        service = PredictionService(
            FixedScorer(), features_memo_size=16, max_executors=4
        )
        samples = []

        def stream():
            for i in range(600):
                if i and i % 150 == 0:
                    samples.append(service.features_memo_len)
                yield QueryArrival(i, f"u{i}", 0, i * 0.1)

        metrics = FleetEngine(
            RecurringPlan(workload),
            capacity=48,
            allocator=service.allocate,
            config=FleetConfig(streaming=True),
        ).serve(stream())
        assert metrics.stats.n_queries == 600
        assert len(samples) == 3
        assert all(s <= 16 for s in samples), samples
        assert service.features_memo_len == 16
        # Eviction never costs a wrong answer: one signature, one miss.
        assert service.misses == 1
        assert service.hits == 599

    def test_streaming_pool_drops_finished_runs(self, workload):
        """After a streaming serve the engine keeps no per-query state:
        the metrics carry only accumulators."""
        arrivals = poisson_arrivals(QIDS, n_queries=50, rate_qps=1.0, seed=9)
        streamed = FleetEngine(
            workload,
            capacity=24,
            allocator=static_allocator(8),
            config=FleetConfig(streaming=True),
        ).serve(iter(arrivals))
        assert streamed.records == []
        assert streamed.stats.n_queries == 50
        # The streaming skyline is a compact summary, not a per-event log.
        assert len(streamed.pool_skyline.points) <= 2


class TestArrivalStream:
    def test_deterministic_given_seed(self):
        a = list(poisson_arrival_stream(QIDS, n_queries=50, rate_qps=2.0, seed=1))
        b = list(poisson_arrival_stream(QIDS, n_queries=50, rate_qps=2.0, seed=1))
        assert a == b

    def test_time_ordered_from_zero(self):
        stream = list(
            poisson_arrival_stream(QIDS, n_queries=100, rate_qps=2.0, seed=3)
        )
        assert stream[0].arrival_time == 0.0
        times = [a.arrival_time for a in stream]
        assert times == sorted(times)
        assert [a.index for a in stream] == list(range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            next(poisson_arrival_stream(QIDS, n_queries=0, rate_qps=1.0))
        with pytest.raises(ValueError):
            next(poisson_arrival_stream(QIDS, n_queries=5, rate_qps=0.0))
        with pytest.raises(ValueError):
            next(poisson_arrival_stream((), n_queries=5, rate_qps=1.0))
        with pytest.raises(ValueError):
            next(poisson_arrival_stream(QIDS, n_queries=5, rate_qps=1.0, n_apps=0))

"""Admission-control tests: policy ordering, capacity invariants,
and the PoolShare bridge into the single-query scheduler."""

import pytest

from repro.engine.allocation import StaticAllocation
from repro.engine.cluster import Cluster
from repro.engine.scheduler import simulate_query
from repro.fleet.admission import (
    AdmissionRequest,
    CapacityArbiter,
    FairShareAdmission,
    FIFOAdmission,
)
from repro.workloads.generator import Workload


def req(q, app=0, n=4, t=0.0):
    return AdmissionRequest(
        query_index=q, app_id=app, executors=n, submit_time=t
    )


class TestFIFO:
    def test_admits_in_arrival_order(self):
        arbiter = CapacityArbiter(capacity=16, policy=FIFOAdmission())
        for i in range(3):
            arbiter.submit(req(i, n=4, t=float(i)))
        admitted = arbiter.admit()
        assert [r.query_index for r in admitted] == [0, 1, 2]
        assert arbiter.in_use == 12

    def test_head_of_line_blocks_smaller_requests(self):
        """FIFO's defining pathology: a big head request starves a small
        one that would fit right now."""
        arbiter = CapacityArbiter(capacity=10, policy=FIFOAdmission())
        arbiter.submit(req(0, n=8))
        assert [r.query_index for r in arbiter.admit()] == [0]
        arbiter.submit(req(1, n=8))   # does not fit (2 free)
        arbiter.submit(req(2, n=2))   # would fit, but is behind 1
        assert arbiter.admit() == []
        assert arbiter.queue_length == 2
        # Head clears -> both admitted, still in order.
        arbiter.release(0)
        assert [r.query_index for r in arbiter.admit()] == [1, 2]

    def test_capacity_never_exceeded(self):
        arbiter = CapacityArbiter(capacity=10, policy=FIFOAdmission())
        for i in range(5):
            arbiter.submit(req(i, n=4))
        arbiter.admit()
        assert arbiter.in_use <= 10
        assert arbiter.in_use == 8  # 2 of 5 admitted


class TestFairShare:
    def test_small_request_bypasses_blocked_head(self):
        arbiter = CapacityArbiter(capacity=10, policy=FairShareAdmission())
        arbiter.submit(req(0, app=0, n=8))
        arbiter.admit()
        arbiter.submit(req(1, app=1, n=8))  # blocked: only 2 free
        arbiter.submit(req(2, app=2, n=2))  # fits; fair-share takes it
        assert [r.query_index for r in arbiter.admit()] == [2]

    def test_least_loaded_app_goes_first(self):
        arbiter = CapacityArbiter(capacity=32, policy=FairShareAdmission())
        arbiter.submit(req(0, app=0, n=16))
        arbiter.admit()
        # Both fit; app 1 holds nothing, app 0 holds 16.
        arbiter.submit(req(1, app=0, n=4, t=1.0))
        arbiter.submit(req(2, app=1, n=4, t=2.0))
        admitted = arbiter.admit()
        assert [r.query_index for r in admitted] == [2, 1]

    def test_ties_break_by_arrival_order(self):
        arbiter = CapacityArbiter(capacity=32, policy=FairShareAdmission())
        arbiter.submit(req(0, app=0, n=4, t=0.0))
        arbiter.submit(req(1, app=1, n=4, t=1.0))
        admitted = arbiter.admit()
        assert [r.query_index for r in admitted] == [0, 1]

    def test_capacity_never_exceeded(self):
        arbiter = CapacityArbiter(capacity=9, policy=FairShareAdmission())
        for i in range(6):
            arbiter.submit(req(i, app=i, n=4))
        arbiter.admit()
        assert arbiter.in_use <= 9
        assert arbiter.in_use == 8


class TestArbiterBookkeeping:
    def test_release_returns_capacity(self):
        arbiter = CapacityArbiter(capacity=8)
        arbiter.submit(req(0, app=3, n=6))
        arbiter.admit()
        assert arbiter.granted_to(0) == 6
        assert arbiter.app_usage(3) == 6
        assert arbiter.release(0, 2) == 2
        assert arbiter.granted_to(0) == 4
        assert arbiter.free == 4
        assert arbiter.release(0) == 4  # rest of the grant
        assert arbiter.in_use == 0
        assert arbiter.app_usage(3) == 0

    def test_over_release_rejected(self):
        arbiter = CapacityArbiter(capacity=8)
        arbiter.submit(req(0, n=4))
        arbiter.admit()
        with pytest.raises(ValueError):
            arbiter.release(0, 5)

    def test_oversized_request_rejected(self):
        arbiter = CapacityArbiter(capacity=8)
        with pytest.raises(ValueError):
            arbiter.submit(req(0, n=9))

    def test_try_acquire_partial(self):
        arbiter = CapacityArbiter(capacity=10)
        assert arbiter.try_acquire(0, 0, 7) == 7
        assert arbiter.try_acquire(1, 1, 7) == 3  # only 3 left
        assert arbiter.try_acquire(2, 2, 7) == 0
        assert arbiter.in_use == 10


class TestPoolShareWithScheduler:
    """The cluster refactor end to end: one simulate_query run drawing its
    executors from a shared pool instead of an infinite one."""

    @pytest.fixture(scope="class")
    def graph(self):
        return Workload(scale_factor=50, query_ids=("q1",)).stage_graph("q1")

    def test_shared_pool_constrains_the_grant(self, graph):
        cluster = Cluster()
        dedicated = simulate_query(graph, StaticAllocation(16), cluster)
        arbiter = CapacityArbiter(capacity=4)
        shared = simulate_query(
            graph,
            StaticAllocation(16),
            cluster,
            capacity_source=arbiter.share(0),
        )
        assert shared.max_executors <= 4
        assert dedicated.max_executors > shared.max_executors
        assert shared.runtime > dedicated.runtime

    def test_everything_returned_after_the_run(self, graph):
        arbiter = CapacityArbiter(capacity=12)
        simulate_query(
            graph,
            StaticAllocation(8),
            Cluster(),
            capacity_source=arbiter.share(0),
        )
        assert arbiter.in_use == 0

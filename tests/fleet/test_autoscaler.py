"""Autoscaler unit tests: signals, lag accounting, cooldown, clamps."""

import pytest

from repro.fleet.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.fleet.routing import PoolView


CFG = AutoscalerConfig(
    min_capacity=4,
    max_capacity=32,
    scale_up_step=8,
    scale_down_step=4,
    scale_up_lag_s=10.0,
    scale_down_cooldown_s=30.0,
    queue_delay_threshold_s=5.0,
    high_utilization=0.85,
    low_utilization=0.40,
)


def view(
    capacity=16,
    in_use=0,
    queue_length=0,
    queued_executors=0,
    oldest_submit_time=None,
):
    return PoolView(
        index=0,
        capacity=capacity,
        max_capacity=CFG.max_capacity,
        free=max(0, capacity - in_use),
        in_use=in_use,
        queue_length=queue_length,
        queued_executors=queued_executors,
        queued_work_seconds=0.0,
        active_queries=0,
        oldest_submit_time=oldest_submit_time,
    )


class TestConfigValidation:
    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_capacity=8, max_capacity=4)

    def test_rejects_inverted_utilization_band(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(
                min_capacity=1,
                max_capacity=8,
                low_utilization=0.9,
                high_utilization=0.5,
            )

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_capacity=1, max_capacity=8, scale_up_step=0)


class TestScaleUp:
    def test_long_queue_wait_triggers_growth(self):
        scaler = PoolAutoscaler(CFG)
        v = view(capacity=16, in_use=16, queue_length=2, queued_executors=16,
                 oldest_submit_time=0.0)
        assert scaler.evaluate(10.0, v) == 8  # full step: demand 32 > 16

    def test_high_utilization_with_queue_triggers_growth(self):
        scaler = PoolAutoscaler(CFG)
        v = view(capacity=16, in_use=15, queue_length=1, queued_executors=8,
                 oldest_submit_time=9.0)
        assert scaler.evaluate(10.0, v) > 0

    def test_no_queue_no_growth_even_when_busy(self):
        scaler = PoolAutoscaler(CFG)
        v = view(capacity=16, in_use=16)
        assert scaler.evaluate(10.0, v) == 0

    def test_growth_clamped_to_demand(self):
        scaler = PoolAutoscaler(CFG)
        v = view(capacity=16, in_use=16, queue_length=1, queued_executors=2,
                 oldest_submit_time=0.0)
        assert scaler.evaluate(10.0, v) == 2  # demand 18, provisioned 16

    def test_growth_clamped_to_ceiling(self):
        scaler = PoolAutoscaler(CFG)
        v = view(capacity=30, in_use=30, queue_length=3, queued_executors=24,
                 oldest_submit_time=0.0)
        assert scaler.evaluate(10.0, v) == 2  # max_capacity 32

    def test_pending_capacity_counts_against_demand(self):
        """During the provisioning lag the scaler must not re-request the
        same executors every tick."""
        scaler = PoolAutoscaler(CFG)
        v = view(capacity=16, in_use=16, queue_length=1, queued_executors=8,
                 oldest_submit_time=0.0)
        assert scaler.evaluate(10.0, v) == 8
        # Same pressure one tick later: demand 24 is already covered by
        # capacity 16 + pending 8.
        assert scaler.evaluate(11.0, v) == 0
        scaler.capacity_online(20.0, 8)
        assert scaler.pending == 0


class TestScaleDown:
    def test_idle_pool_sheds_capacity(self):
        scaler = PoolAutoscaler(CFG)
        assert scaler.evaluate(100.0, view(capacity=16, in_use=2)) == -4

    def test_never_below_floor(self):
        scaler = PoolAutoscaler(CFG)
        assert scaler.evaluate(100.0, view(capacity=6, in_use=0)) == -2
        scaler2 = PoolAutoscaler(CFG)
        assert scaler2.evaluate(100.0, view(capacity=4, in_use=0)) == 0

    def test_only_free_capacity_is_decommissioned(self):
        """Scale-down racing outstanding grants: the decision itself is
        bounded by free capacity, so in-flight grants are untouched."""
        scaler = PoolAutoscaler(CFG)
        # 14 of 16 reserved -> util 87% is not low; use a low-util view
        # where free space is still tiny: capacity 16, in_use 13 is 81%.
        # Build the corner directly: low utilization but free < step.
        cfg = AutoscalerConfig(
            min_capacity=1, max_capacity=32, scale_down_step=8,
            scale_down_cooldown_s=0.0, low_utilization=0.7,
            high_utilization=0.9,
        )
        scaler = PoolAutoscaler(cfg)
        delta = scaler.evaluate(100.0, view(capacity=16, in_use=10))
        assert delta == -6  # free capacity, not the full 8-step

    def test_queue_blocks_scale_down(self):
        scaler = PoolAutoscaler(CFG)
        v = view(capacity=16, in_use=2, queue_length=1, queued_executors=24,
                 oldest_submit_time=99.0)
        assert scaler.evaluate(100.0, v) <= 0  # may scale up, never down
        assert scaler.scale_downs == 0

    def test_pending_scale_up_blocks_scale_down(self):
        scaler = PoolAutoscaler(CFG)
        scaler.pending = 8
        assert scaler.evaluate(100.0, view(capacity=16, in_use=0)) == 0


class TestCooldown:
    def test_cooldown_prevents_oscillation(self):
        """After any scaling action, shrinks wait out the cooldown — a
        bursty stream cannot make the pool thrash."""
        scaler = PoolAutoscaler(CFG)
        busy = view(capacity=16, in_use=16, queue_length=1,
                    queued_executors=8, oldest_submit_time=0.0)
        idle = view(capacity=24, in_use=0)
        assert scaler.evaluate(10.0, busy) == 8
        scaler.capacity_online(20.0, 8)
        # Idle immediately after the scale-up: held by the cooldown.
        assert scaler.evaluate(21.0, idle) == 0
        assert scaler.evaluate(40.0, idle) == 0
        # Cooldown (30 s after the action at t=20) has elapsed.
        assert scaler.evaluate(51.0, idle) == -4

    def test_scale_downs_are_also_spaced_by_cooldown(self):
        scaler = PoolAutoscaler(CFG)
        idle = view(capacity=32, in_use=0)
        assert scaler.evaluate(100.0, idle) == -4
        assert scaler.evaluate(101.0, view(capacity=28, in_use=0)) == 0
        assert scaler.evaluate(131.0, view(capacity=28, in_use=0)) == -4

    def test_first_decision_needs_no_cooldown(self):
        scaler = PoolAutoscaler(CFG)
        assert scaler.evaluate(0.0, view(capacity=16, in_use=0)) == -4

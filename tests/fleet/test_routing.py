"""Router unit tests: determinism, tie-breaking, load sensitivity."""

import pytest

from repro.fleet.routing import (
    DEFAULT_RUNTIME_ESTIMATE_S,
    CostAwareRouter,
    LeastQueuedRouter,
    PoolView,
    RoundRobinRouter,
    RoutingRequest,
)


def view(
    index,
    capacity=16,
    free=None,
    queue_length=0,
    queued_executors=0,
    queued_work_seconds=0.0,
    active_queries=0,
    oldest_submit_time=None,
    max_capacity=None,
):
    free = capacity if free is None else free
    return PoolView(
        index=index,
        capacity=capacity,
        max_capacity=capacity if max_capacity is None else max_capacity,
        free=free,
        in_use=capacity - free,
        queue_length=queue_length,
        queued_executors=queued_executors,
        queued_work_seconds=queued_work_seconds,
        active_queries=active_queries,
        oldest_submit_time=oldest_submit_time,
    )


def request(budget=8, estimate=None):
    return RoutingRequest(
        query_id="q1",
        app_id=0,
        budget=budget,
        estimated_runtime_seconds=estimate,
        submit_time=0.0,
    )


class TestRoundRobin:
    def test_cycles_regardless_of_load(self):
        router = RoundRobinRouter()
        pools = [view(0, free=0, queue_length=9), view(1), view(2)]
        picks = [router.pick(request(), pools) for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]


class TestLeastQueued:
    def test_prefers_shortest_queue(self):
        pools = [
            view(0, queue_length=3),
            view(1, queue_length=1),
            view(2, queue_length=2),
        ]
        assert LeastQueuedRouter().pick(request(), pools) == 1

    def test_queue_length_ties_break_on_free_capacity(self):
        pools = [view(0, free=2), view(1, free=10), view(2, free=5)]
        assert LeastQueuedRouter().pick(request(), pools) == 1

    def test_fully_tied_pools_pick_lowest_index(self):
        pools = [view(0), view(1), view(2)]
        assert LeastQueuedRouter().pick(request(), pools) == 0

    def test_pool_too_small_for_the_budget_ranks_last(self):
        """Heterogeneous cluster: a budget must not be silently
        truncated onto a small pool while a big one is available."""
        pools = [view(0, capacity=8), view(1, capacity=32, queue_length=1)]
        assert LeastQueuedRouter().pick(request(budget=16), pools) == 1
        # all pools undersized: degrade gracefully to the usual key
        small = [view(0, capacity=8, queue_length=2), view(1, capacity=8)]
        assert LeastQueuedRouter().pick(request(budget=16), small) == 1


class TestCostAware:
    def test_prefers_pool_that_admits_immediately(self):
        pools = [
            view(0, free=4, queued_work_seconds=100.0, queue_length=2),
            view(1, free=12),
        ]
        assert CostAwareRouter().pick(request(budget=8), pools) == 1

    def test_best_fit_among_immediately_available_pools(self):
        # Both admit now; the tighter fit keeps pool 1's headroom whole.
        pools = [view(0, free=16), view(1, free=9)]
        assert CostAwareRouter().pick(request(budget=8), pools) == 1

    def test_least_predicted_backlog_when_all_saturated(self):
        pools = [
            view(0, free=0, queue_length=2, queued_work_seconds=900.0),
            view(1, free=0, queue_length=3, queued_work_seconds=300.0),
        ]
        assert CostAwareRouter().pick(request(budget=8, estimate=30.0), pools) == 1

    def test_backlog_normalized_by_capacity(self):
        # Same queued work, but pool 1 drains it four times faster.
        pools = [
            view(0, capacity=8, free=0, queue_length=1, queued_work_seconds=400.0),
            view(1, capacity=32, free=0, queue_length=1, queued_work_seconds=400.0),
        ]
        assert CostAwareRouter().pick(request(budget=8, estimate=10.0), pools) == 1

    def test_missing_estimate_falls_back_to_default(self):
        assert request(estimate=None).runtime_estimate == DEFAULT_RUNTIME_ESTIMATE_S
        assert request(estimate=12.5).runtime_estimate == 12.5

    def test_deterministic_across_calls(self):
        pools = [view(0, free=0, queue_length=1), view(1, free=0, queue_length=1)]
        router = CostAwareRouter()
        picks = {router.pick(request(), pools) for _ in range(5)}
        assert picks == {0}

    def test_pool_too_small_for_the_budget_ranks_last(self):
        # The big pool is backlogged, the small one idle — but the small
        # one could only ever grant half the budget, so the big one wins.
        pools = [
            view(0, capacity=8),
            view(1, capacity=32, free=0, queue_length=1, queued_work_seconds=50.0),
        ]
        assert CostAwareRouter().pick(request(budget=16), pools) == 1


class TestEmptyCluster:
    @pytest.mark.parametrize(
        "router", [RoundRobinRouter(), LeastQueuedRouter(), CostAwareRouter()]
    )
    def test_no_pools_is_an_error_not_a_silent_drop(self, router):
        with pytest.raises((ValueError, ZeroDivisionError)):
            router.pick(request(), [])

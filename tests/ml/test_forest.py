"""Unit tests for the random forest regressor."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor


class TestFit:
    def test_trains_requested_number_of_trees(self, rng):
        X, y = rng.random((30, 3)), rng.random(30)
        forest = RandomForestRegressor(n_estimators=7, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_learns_linear_signal(self, rng):
        X = rng.random((200, 4))
        y = 3 * X[:, 0] - 2 * X[:, 1]
        forest = RandomForestRegressor(n_estimators=30, random_state=0).fit(X, y)
        mse = float(np.mean((forest.predict(X) - y) ** 2))
        assert mse < 0.05 * float(np.var(y))

    def test_multioutput_shape(self, rng):
        X, y = rng.random((40, 3)), rng.random((40, 2))
        forest = RandomForestRegressor(n_estimators=5, random_state=0).fit(X, y)
        assert forest.predict(X).shape == (40, 2)
        assert forest.n_outputs_ == 2

    def test_1d_target_round_trip(self, rng):
        X, y = rng.random((20, 2)), rng.random(20)
        forest = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        assert forest.predict(X).shape == (20,)

    def test_without_bootstrap_trees_are_identical(self, rng):
        X, y = rng.random((30, 3)), rng.random(30)
        forest = RandomForestRegressor(
            n_estimators=4, bootstrap=False, random_state=0
        ).fit(X, y)
        preds = [t.predict(X) for t in forest.estimators_]
        for p in preds[1:]:
            assert np.allclose(p, preds[0])

    def test_bootstrap_trees_differ(self, rng):
        X, y = rng.random((50, 3)), rng.random(50)
        forest = RandomForestRegressor(n_estimators=4, random_state=0).fit(X, y)
        preds = [t.predict(X) for t in forest.estimators_]
        assert not np.allclose(preds[0], preds[1])

    def test_prediction_is_mean_of_trees(self, rng):
        X, y = rng.random((25, 2)), rng.random(25)
        forest = RandomForestRegressor(n_estimators=5, random_state=0).fit(X, y)
        stacked = np.stack(
            [np.atleast_2d(t.predict(X).T).T for t in forest.estimators_]
        )
        assert np.allclose(forest.predict(X), stacked.mean(axis=0)[:, 0])


class TestDeterminism:
    def test_same_seed_reproduces_predictions(self, rng):
        X, y = rng.random((60, 4)), rng.random(60)
        p1 = (
            RandomForestRegressor(n_estimators=10, random_state=42).fit(X, y).predict(X)
        )
        p2 = (
            RandomForestRegressor(n_estimators=10, random_state=42).fit(X, y).predict(X)
        )
        assert np.allclose(p1, p2)

    def test_different_seeds_differ(self, rng):
        X, y = rng.random((60, 4)), rng.random(60)
        p1 = RandomForestRegressor(n_estimators=10, random_state=1).fit(X, y).predict(X)
        p2 = RandomForestRegressor(n_estimators=10, random_state=2).fit(X, y).predict(X)
        assert not np.allclose(p1, p2)


class TestValidation:
    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestRegressor(n_estimators=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_rejects_wrong_feature_count_at_predict(self, rng):
        forest = RandomForestRegressor(n_estimators=2, random_state=0).fit(
            rng.random((10, 3)), rng.random(10)
        )
        with pytest.raises(ValueError, match="features"):
            forest.predict(rng.random((2, 5)))

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError, match="empty"):
            RandomForestRegressor(n_estimators=2).fit(
                np.empty((0, 3)), np.empty(0)
            )

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="inconsistent"):
            RandomForestRegressor(n_estimators=2).fit(
                rng.random((5, 2)), rng.random(4)
            )


class TestImportances:
    def test_importances_identify_signal_feature(self, rng):
        X = rng.random((150, 5))
        y = 10 * X[:, 3] + rng.normal(0, 0.05, 150)
        forest = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        imp = forest.feature_importances_
        assert int(np.argmax(imp)) == 3
        assert abs(imp.sum() - 1.0) < 1e-6

    def test_importances_before_fit_raise(self):
        with pytest.raises(RuntimeError):
            _ = RandomForestRegressor().feature_importances_


class TestGeneralization:
    def test_forest_beats_single_tree_out_of_sample(self, rng):
        X = rng.random((300, 5))
        y = np.sin(4 * X[:, 0]) + 0.5 * X[:, 1] + rng.normal(0, 0.2, 300)
        X_tr, y_tr, X_te, y_te = X[:200], y[:200], X[200:], y[200:]
        from repro.ml.tree import DecisionTreeRegressor

        tree_mse = float(
            np.mean(
                (
                    DecisionTreeRegressor(random_state=0).fit(X_tr, y_tr).predict(X_te)
                    - y_te
                )
                ** 2
            )
        )
        forest_mse = float(
            np.mean(
                (
                    RandomForestRegressor(n_estimators=40, random_state=0)
                    .fit(X_tr, y_tr)
                    .predict(X_te)
                    - y_te
                )
                ** 2
            )
        )
        assert forest_mse < tree_mse

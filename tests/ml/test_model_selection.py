"""Unit tests for KFold / RepeatedKFold / train_test_split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.model_selection import KFold, RepeatedKFold, train_test_split


class TestKFold:
    def test_folds_partition_the_dataset(self):
        kf = KFold(n_splits=5)
        seen = []
        for train, test in kf.split(23):
            seen.extend(test.tolist())
            assert set(train) | set(test) == set(range(23))
            assert not set(train) & set(test)
        assert sorted(seen) == list(range(23))

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(5).split(103)]
        assert sorted(sizes) == [20, 20, 21, 21, 21]  # the paper's 80:20

    def test_shuffle_changes_order_deterministically(self):
        a = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=0).split(12)]
        b = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=0).split(12)]
        c = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(12)]
        assert a == b
        assert a != c

    def test_accepts_array_input(self):
        X = np.zeros((10, 2))
        folds = list(KFold(2).split(X))
        assert len(folds) == 2

    def test_rejects_one_split(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_rejects_more_folds_than_samples(self):
        with pytest.raises(ValueError, match="folds"):
            list(KFold(5).split(3))

    def test_random_state_without_shuffle_rejected(self):
        with pytest.raises(ValueError, match="shuffle"):
            KFold(3, shuffle=False, random_state=1)


class TestRepeatedKFold:
    def test_yields_repeats_times_splits_folds(self):
        rkf = RepeatedKFold(n_splits=5, n_repeats=10, random_state=0)
        assert len(list(rkf.split(103))) == 50  # the paper's protocol size

    def test_each_repeat_is_a_full_partition(self):
        rkf = RepeatedKFold(n_splits=4, n_repeats=3, random_state=0)
        for folds in rkf.split_by_repeat(20):
            covered = sorted(i for _, test in folds for i in test)
            assert covered == list(range(20))

    def test_repeats_use_different_shuffles(self):
        rkf = RepeatedKFold(n_splits=2, n_repeats=2, random_state=0)
        repeats = list(rkf.split_by_repeat(16))
        assert repeats[0][0][1].tolist() != repeats[1][0][1].tolist()

    def test_deterministic_given_seed(self):
        r1 = [t.tolist() for _, t in RepeatedKFold(3, 2, random_state=5).split(9)]
        r2 = [t.tolist() for _, t in RepeatedKFold(3, 2, random_state=5).split(9)]
        assert r1 == r2

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            RepeatedKFold(n_repeats=0)


class TestTrainTestSplit:
    def test_split_sizes(self, rng):
        X = rng.random((100, 2))
        X_tr, X_te = train_test_split(X, test_size=0.2, random_state=0)
        assert X_tr.shape == (80, 2)
        assert X_te.shape == (20, 2)

    def test_multiple_arrays_stay_aligned(self, rng):
        X = np.arange(50, dtype=float)[:, None]
        y = np.arange(50, dtype=float) * 10
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, random_state=0)
        assert np.allclose(X_tr[:, 0] * 10, y_tr)
        assert np.allclose(X_te[:, 0] * 10, y_te)

    def test_no_shuffle_keeps_order(self):
        X = np.arange(10)
        X_tr, X_te = train_test_split(X, test_size=0.3, shuffle=False)
        assert X_te.tolist() == [0, 1, 2]
        assert X_tr.tolist() == [3, 4, 5, 6, 7, 8, 9]

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_test_size(self, bad):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_size=bad)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError, match="same length"):
            train_test_split(np.arange(5), np.arange(6))

    def test_rejects_no_arrays(self):
        with pytest.raises(ValueError):
            train_test_split()


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=200),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=99),
)
def test_property_kfold_always_partitions(n, k, seed):
    if n < k:
        return
    seen = []
    for train, test in KFold(k, shuffle=True, random_state=seed).split(n):
        assert len(test) >= 1
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(n))

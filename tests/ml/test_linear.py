"""Unit tests for ordinary least squares."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression


class TestExactRecovery:
    def test_recovers_line(self):
        X = np.arange(10, dtype=float)[:, None]
        y = 2.5 * X[:, 0] + 1.0
        reg = LinearRegression().fit(X, y)
        assert abs(reg.coef_[0] - 2.5) < 1e-9
        assert abs(reg.intercept_ - 1.0) < 1e-9

    def test_recovers_multivariate_plane(self, rng):
        X = rng.random((50, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 4.0
        reg = LinearRegression().fit(X, y)
        assert np.allclose(reg.coef_, [1.0, -2.0, 0.5])
        assert abs(reg.intercept_ - 4.0) < 1e-9

    def test_without_intercept_forces_origin(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        reg = LinearRegression(fit_intercept=False).fit(X, y)
        assert abs(reg.coef_[0] - 2.0) < 1e-9
        assert reg.intercept_ == pytest.approx(0.0)

    def test_multioutput(self, rng):
        X = rng.random((30, 2))
        Y = np.column_stack([X[:, 0] * 2, X[:, 1] * -3 + 1])
        reg = LinearRegression().fit(X, Y)
        assert reg.predict(X).shape == (30, 2)
        assert np.allclose(reg.predict(X), Y)

    def test_accepts_1d_X(self):
        x = np.arange(5.0)
        reg = LinearRegression().fit(x, 3 * x)
        assert np.allclose(reg.predict(np.array([10.0])), [30.0])


class TestAmdahlAndPowerLawFitShapes:
    """The two regressions Section 3.4 actually performs."""

    def test_amdahl_shape_t_vs_inverse_n(self):
        n = np.arange(1, 49, dtype=float)
        t = 12.0 + 340.0 / n
        reg = LinearRegression().fit((1.0 / n)[:, None], t)
        assert abs(reg.intercept_ - 12.0) < 1e-9
        assert abs(reg.coef_[0] - 340.0) < 1e-6

    def test_power_law_shape_loglog(self):
        n = np.arange(1, 33, dtype=float)
        t = 500.0 * n**-0.8
        reg = LinearRegression().fit(np.log(n)[:, None], np.log(t))
        assert abs(reg.coef_[0] + 0.8) < 1e-9
        assert abs(np.exp(reg.intercept_) - 500.0) < 1e-6


class TestDegenerateInputs:
    def test_rank_deficient_design_does_not_crash(self):
        X = np.ones((5, 2))  # two identical constant columns
        y = np.arange(5.0)
        reg = LinearRegression().fit(X, y)
        assert np.isfinite(reg.predict(X)).all()

    def test_single_sample(self):
        reg = LinearRegression().fit(np.array([[1.0]]), np.array([5.0]))
        assert np.isfinite(reg.predict(np.array([[1.0]]))).all()


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LinearRegression().predict(np.zeros((1, 1)))

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="inconsistent"):
            LinearRegression().fit(rng.random((4, 2)), rng.random(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            LinearRegression().fit(np.empty((0, 1)), np.empty(0))

    def test_predict_rejects_wrong_width(self, rng):
        reg = LinearRegression().fit(rng.random((5, 2)), rng.random(5))
        with pytest.raises(ValueError, match="features"):
            reg.predict(rng.random((2, 3)))

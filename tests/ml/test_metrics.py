"""Unit tests for regression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    total_absolute_error_ratio,
)


class TestBasicMetrics:
    def test_mse_known_value(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_mae_known_value(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_perfect_prediction_zero_error(self, rng):
        y = rng.random(20)
        assert mean_squared_error(y, y) == 0.0
        assert mean_absolute_error(y, y) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            mean_squared_error(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mean_absolute_error(np.array([]), np.array([]))


class TestR2:
    def test_perfect_fit_scores_one(self, rng):
        y = rng.random(15)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_predictor_scores_zero(self, rng):
        y = rng.random(50)
        pred = np.full_like(y, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_bad_predictor_scores_negative(self, rng):
        y = rng.random(50)
        assert r2_score(y, -10 * y) < 0.0

    def test_constant_target_conventions(self):
        y = np.ones(5)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_multioutput_uniform_average(self, rng):
        y = rng.random((20, 2))
        pred = y.copy()
        pred[:, 1] = y[:, 1].mean()  # output 1 scored by mean predictor
        assert r2_score(y, pred) == pytest.approx(0.5, abs=1e-9)


class TestE_Metric:
    """total_absolute_error_ratio is Equation 6's building block."""

    def test_known_value(self):
        actual = np.array([10.0, 20.0])
        predicted = np.array([12.0, 17.0])
        assert total_absolute_error_ratio(actual, predicted) == pytest.approx(
            5.0 / 30.0
        )

    def test_perfect_prediction_is_zero(self, rng):
        y = rng.random(10) + 1.0
        assert total_absolute_error_ratio(y, y) == 0.0

    def test_symmetric_in_error_sign(self):
        actual = np.array([10.0, 10.0])
        over = total_absolute_error_ratio(actual, np.array([12.0, 12.0]))
        under = total_absolute_error_ratio(actual, np.array([8.0, 8.0]))
        assert over == pytest.approx(under)

    def test_zero_actuals_rejected(self):
        with pytest.raises(ValueError, match="undefined"):
            total_absolute_error_ratio(np.zeros(3), np.ones(3))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_property_mse_at_least_squared_mae_relation(seed):
    """Jensen: MSE >= MAE^2 for any data."""
    rng = np.random.default_rng(seed)
    y = rng.normal(size=30)
    p = rng.normal(size=30)
    assert mean_squared_error(y, p) >= mean_absolute_error(y, p) ** 2 - 1e-12


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_property_e_metric_nonnegative_and_scale_invariant(seed):
    rng = np.random.default_rng(seed)
    actual = rng.random(20) + 0.5
    predicted = rng.random(20) + 0.5
    e = total_absolute_error_ratio(actual, predicted)
    assert e >= 0.0
    # scaling both series leaves the ratio unchanged
    assert total_absolute_error_ratio(3 * actual, 3 * predicted) == pytest.approx(e)

"""Unit tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import DecisionTreeRegressor, _resolve_max_features


class TestFitBasics:
    def test_fits_constant_target_with_single_leaf(self):
        X = np.arange(10, dtype=float)[:, None]
        y = np.full(10, 3.5)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.n_leaves_ == 1
        assert np.allclose(tree.predict(X), 3.5)

    def test_perfectly_separates_step_function(self):
        X = np.arange(20, dtype=float)[:, None]
        y = (X[:, 0] >= 10).astype(float)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_memorizes_training_data_with_unique_features(self, rng):
        X = rng.random((50, 3))
        y = rng.random(50)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_multioutput_predictions_have_output_shape(self, rng):
        X = rng.random((30, 4))
        y = rng.random((30, 3))
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.predict(X).shape == (30, 3)
        assert np.allclose(tree.predict(X), y)

    def test_1d_target_gives_1d_predictions(self, rng):
        X = rng.random((10, 2))
        tree = DecisionTreeRegressor().fit(X, rng.random(10))
        assert tree.predict(X).shape == (10,)

    def test_splits_reduce_mse_over_root_prediction(self, rng):
        X = rng.random((100, 5))
        y = 2.0 * X[:, 0] + rng.normal(0, 0.01, 100)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        mse_tree = float(np.mean((tree.predict(X) - y) ** 2))
        mse_mean = float(np.var(y))
        assert mse_tree < mse_mean * 0.5


class TestHyperparameters:
    def test_max_depth_zero_not_allowed_but_one_limits_to_stump(self, rng):
        X = rng.random((40, 2))
        y = rng.random(40)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree.depth_ <= 1
        assert tree.n_leaves_ <= 2

    def test_max_depth_none_grows_deep(self, rng):
        X = rng.random((64, 1))
        y = rng.random(64)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.n_leaves_ == 64

    def test_min_samples_leaf_enforced(self, rng):
        X = rng.random((60, 3))
        y = rng.random(60)
        tree = DecisionTreeRegressor(min_samples_leaf=7).fit(X, y)
        for node in tree.nodes_:
            if node.is_leaf:
                assert node.n_samples >= 7

    def test_min_samples_split_stops_growth(self, rng):
        X = rng.random((30, 2))
        y = rng.random(30)
        tree = DecisionTreeRegressor(min_samples_split=31).fit(X, y)
        assert tree.n_leaves_ == 1

    def test_max_features_subsampling_still_fits(self, rng):
        X = rng.random((50, 8))
        y = X[:, 2] * 3
        tree = DecisionTreeRegressor(max_features="sqrt", random_state=0).fit(
            X, y
        )
        # With feature subsampling the fit may be imperfect but must beat
        # the mean predictor.
        mse = float(np.mean((tree.predict(X) - y) ** 2))
        assert mse < float(np.var(y))

    @pytest.mark.parametrize(
        "spec,n,expected",
        [
            (None, 10, 10),
            (1.0, 10, 10),
            (0.5, 10, 5),
            (3, 10, 3),
            (30, 10, 10),
            ("sqrt", 16, 4),
            ("log2", 16, 4),
        ],
    )
    def test_resolve_max_features(self, spec, n, expected):
        assert _resolve_max_features(spec, n) == expected

    @pytest.mark.parametrize("bad", ["bogus", 0, -1, 0.0, 1.5, True])
    def test_resolve_max_features_rejects_bad_specs(self, bad):
        with pytest.raises((ValueError, TypeError)):
            _resolve_max_features(bad, 10)


class TestValidation:
    def test_rejects_1d_X(self):
        with pytest.raises(ValueError, match="2-D"):
            DecisionTreeRegressor().fit(np.arange(5.0), np.arange(5.0))

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError, match="inconsistent"):
            DecisionTreeRegressor().fit(rng.random((5, 2)), rng.random(6))

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError, match="empty"):
            DecisionTreeRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_rejects_3d_target(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(
                rng.random((5, 2)), rng.random((5, 2, 2))
            )

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_predict_rejects_wrong_feature_count(self, rng):
        tree = DecisionTreeRegressor().fit(rng.random((10, 3)), rng.random(10))
        with pytest.raises(ValueError, match="features"):
            tree.predict(rng.random((2, 4)))


class TestIntrospection:
    def test_feature_importances_sum_to_one(self, rng):
        X = rng.random((60, 4))
        y = X[:, 1] * 5 + rng.normal(0, 0.1, 60)
        tree = DecisionTreeRegressor().fit(X, y)
        imp = tree.feature_importances_
        assert imp.shape == (4,)
        assert abs(imp.sum() - 1.0) < 1e-9
        assert int(np.argmax(imp)) == 1

    def test_importances_zero_for_constant_target(self, rng):
        X = rng.random((20, 3))
        tree = DecisionTreeRegressor().fit(X, np.ones(20))
        assert np.allclose(tree.feature_importances_, 0.0)

    def test_apply_returns_leaf_ids(self, rng):
        X = rng.random((25, 2))
        tree = DecisionTreeRegressor().fit(X, rng.random(25))
        leaves = tree.apply(X)
        assert leaves.shape == (25,)
        for leaf in leaves:
            assert tree.nodes_[leaf].is_leaf


class TestDeterminism:
    def test_same_seed_same_tree(self, rng):
        X = rng.random((40, 6))
        y = rng.random(40)
        t1 = DecisionTreeRegressor(max_features=3, random_state=7).fit(X, y)
        t2 = DecisionTreeRegressor(max_features=3, random_state=7).fit(X, y)
        assert np.allclose(t1.predict(X), t2.predict(X))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    d=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_predictions_within_target_range(n, d, seed):
    """Leaf means can never leave the convex hull of the training targets."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = rng.normal(size=n)
    tree = DecisionTreeRegressor().fit(X, y)
    preds = tree.predict(rng.random((20, d)))
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_property_depth_respects_bound(seed):
    rng = np.random.default_rng(seed)
    X = rng.random((50, 3))
    y = rng.normal(size=50)
    for depth in (1, 2, 4):
        tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
        assert tree.depth_ <= depth

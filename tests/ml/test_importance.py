"""Unit tests for permutation feature importance."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.importance import permutation_importance
from repro.ml.linear import LinearRegression


@pytest.fixture(scope="module")
def fitted_model_and_data():
    rng = np.random.default_rng(0)
    X = rng.random((200, 4))
    y = 5 * X[:, 0] + 0.5 * X[:, 2] + rng.normal(0, 0.05, 200)
    model = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_signal_feature_ranks_first(self, fitted_model_and_data):
        model, X, y = fitted_model_and_data
        result = permutation_importance(model, X, y, n_repeats=5, random_state=0)
        assert int(np.argmax(result.importances_mean)) == 0

    def test_noise_features_near_zero(self, fitted_model_and_data):
        model, X, y = fitted_model_and_data
        result = permutation_importance(model, X, y, n_repeats=5, random_state=0)
        # features 1 and 3 carry no signal
        assert result.importances_mean[1] < 0.05
        assert result.importances_mean[3] < 0.05

    def test_shapes(self, fitted_model_and_data):
        model, X, y = fitted_model_and_data
        result = permutation_importance(model, X, y, n_repeats=7, random_state=0)
        assert result.importances.shape == (4, 7)
        assert result.importances_mean.shape == (4,)
        assert result.importances_std.shape == (4,)

    def test_deterministic_given_seed(self, fitted_model_and_data):
        model, X, y = fitted_model_and_data
        r1 = permutation_importance(model, X, y, n_repeats=3, random_state=9)
        r2 = permutation_importance(model, X, y, n_repeats=3, random_state=9)
        assert np.allclose(r1.importances, r2.importances)

    def test_works_with_linear_model(self, rng):
        X = rng.random((100, 3))
        y = X[:, 1] * 4
        model = LinearRegression().fit(X, y)
        result = permutation_importance(model, X, y, n_repeats=4, random_state=0)
        assert int(np.argmax(result.importances_mean)) == 1

    def test_custom_scorer(self, fitted_model_and_data):
        model, X, y = fitted_model_and_data

        def neg_mae(y_true, y_pred):
            return -float(np.mean(np.abs(y_true - y_pred)))

        result = permutation_importance(
            model, X, y, n_repeats=3, random_state=0, scorer=neg_mae
        )
        assert int(np.argmax(result.importances_mean)) == 0

    def test_rejects_zero_repeats(self, fitted_model_and_data):
        model, X, y = fitted_model_and_data
        with pytest.raises(ValueError, match="n_repeats"):
            permutation_importance(model, X, y, n_repeats=0)

    def test_rejects_1d_X(self, fitted_model_and_data):
        model, _, y = fitted_model_and_data
        with pytest.raises(ValueError, match="2-D"):
            permutation_importance(model, np.zeros(5), y[:5])

    def test_does_not_mutate_input(self, fitted_model_and_data):
        model, X, y = fitted_model_and_data
        X_copy = X.copy()
        permutation_importance(model, X, y, n_repeats=2, random_state=0)
        assert np.array_equal(X, X_copy)

"""Unit tests for the synthetic production trace.

Every statistic the paper reports for its Microsoft workload snapshot
(Sections 2.1–2.2) is asserted here against the generator's output.
"""

import numpy as np
import pytest

from repro.workloads.production import (
    DEFAULT_MAX_EXECUTORS,
    DEFAULT_MIN_EXECUTORS,
    ProductionTrace,
    generate_production_trace,
)


@pytest.fixture(scope="module")
def trace() -> ProductionTrace:
    return generate_production_trace(n_applications=9_000, seed=0)


class TestShape:
    def test_sizes(self, trace):
        assert trace.n_applications == 9_000
        assert trace.n_queries > trace.n_applications

    def test_deterministic(self):
        t1 = generate_production_trace(n_applications=500, seed=3)
        t2 = generate_production_trace(n_applications=500, seed=3)
        assert np.array_equal(t1.queries_per_app, t2.queries_per_app)
        assert np.array_equal(t1.static_executors, t2.static_executors)

    def test_seed_changes_trace(self):
        t1 = generate_production_trace(n_applications=500, seed=1)
        t2 = generate_production_trace(n_applications=500, seed=2)
        assert not np.array_equal(t1.queries_per_app, t2.queries_per_app)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            generate_production_trace(n_applications=0)


class TestFig2aQueriesPerApp:
    def test_more_than_60_percent_multi_query(self, trace):
        """Paper: 'more than 60% of the applications have more than one
        query'."""
        assert trace.multi_query_fraction() > 0.60

    def test_heavy_tail_reaches_thousands(self, trace):
        assert trace.queries_per_app.max() > 1_000

    def test_tail_capped(self, trace):
        assert trace.queries_per_app.max() <= 10_000


class TestFig2bVariation:
    def test_single_query_apps_have_zero_cov(self, trace):
        single = trace.queries_per_app == 1
        assert np.all(trace.cov_query_times[single] == 0.0)

    def test_half_of_apps_exceed_20pct_operator_cov(self, trace):
        """Paper: CoV of 20% or more in operator counts for half the apps."""
        assert np.mean(trace.cov_operator_counts >= 20.0) >= 0.45

    def test_rows_cov_exceeds_40pct_for_half(self, trace):
        assert np.mean(trace.cov_rows_processed >= 40.0) >= 0.45

    def test_times_cov_exceeds_60pct_for_half(self, trace):
        assert np.mean(trace.cov_query_times >= 60.0) >= 0.45

    def test_ordering_of_the_three_metrics(self, trace):
        """Times vary more than rows, rows more than operator counts."""
        assert (
            np.median(trace.cov_query_times[trace.queries_per_app > 1])
            > np.median(trace.cov_rows_processed[trace.queries_per_app > 1])
            > np.median(trace.cov_operator_counts[trace.queries_per_app > 1])
        )


class TestFig2cConcurrency:
    def test_70_percent_never_share(self, trace):
        """Paper: around 70% of applications do not share compute."""
        assert 0.65 <= trace.unshared_cluster_fraction() <= 0.75

    def test_peaks_bounded_at_64(self, trace):
        assert trace.max_concurrent_apps.max() <= 64
        assert trace.max_concurrent_apps.min() >= 1


class TestFig3aAllocationConfig:
    def test_59_percent_dynamic_allocation(self, trace):
        """Paper Section 2.2: 59% of applications enable DA."""
        assert 0.56 <= trace.da_fraction() <= 0.62

    def test_97_percent_keep_default_thresholds(self, trace):
        assert 0.95 <= trace.default_threshold_fraction() <= 0.99

    def test_default_thresholds_are_pathological(self):
        assert DEFAULT_MIN_EXECUTORS == 0
        assert DEFAULT_MAX_EXECUTORS == 2**31 - 1

    def test_custom_ranges_mostly_2(self, trace):
        """Paper Fig 3a: almost 60% of custom ranges are just 2."""
        ranges = trace.custom_da_ranges()
        assert ranges.size > 0
        assert 0.5 <= np.mean(ranges == 2) <= 0.7
        assert ranges.max() <= 64


class TestFig3bStaticAllocation:
    def test_80_percent_run_with_default_2_executors(self, trace):
        """Paper: 80% of non-DA applications use the default of 2."""
        static = trace.static_allocations()
        assert 0.75 <= np.mean(static == 2) <= 0.85

    def test_total_cores_tail_reaches_2048(self, trace):
        assert trace.static_total_cores().max() == 2048

    def test_da_apps_have_no_static_entry(self, trace):
        assert np.all(trace.static_executors[trace.dynamic_allocation] == 0)

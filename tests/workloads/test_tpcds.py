"""Unit tests for the TPC-DS-like workload generator."""

import numpy as np
import pytest

from repro.engine.plan import OperatorKind
from repro.workloads.tpcds import (
    QUERY_IDS,
    TABLE_CATALOG,
    build_query,
    tpcds_workload,
)


class TestQueryIds:
    def test_103_queries(self):
        """Paper Section 5.1: 103 queries = 99 + variants."""
        assert len(QUERY_IDS) == 103

    def test_variants_present(self):
        for variant in ("q14b", "q23b", "q24b", "q39b"):
            assert variant in QUERY_IDS

    def test_ids_unique(self):
        assert len(set(QUERY_IDS)) == 103


class TestCatalog:
    def test_fact_tables_scale_linearly(self):
        ss = TABLE_CATALOG["store_sales"]
        assert ss.rows(100) == pytest.approx(100 * ss.rows(1))

    def test_calendar_dimensions_do_not_scale(self):
        dd = TABLE_CATALOG["date_dim"]
        assert dd.rows(100) == pytest.approx(dd.rows(1))

    def test_customer_scales_sublinearly(self):
        c = TABLE_CATALOG["customer"]
        assert c.rows(1) < c.rows(100) < 100 * c.rows(1)

    def test_source_carries_scaled_sizes(self):
        src = TABLE_CATALOG["web_sales"].source(10)
        assert src.rows == pytest.approx(7.2e6)
        assert src.bytes > 0


class TestBuildQuery:
    def test_plans_validate(self):
        for qid in QUERY_IDS[:20]:
            build_query(qid, scale_factor=10).validate()

    def test_deterministic(self):
        p1 = build_query("q42", 100)
        p2 = build_query("q42", 100)
        assert p1.operator_counts() == p2.operator_counts()
        assert p1.total_input_bytes() == p2.total_input_bytes()

    def test_different_queries_differ(self):
        a = build_query("q1", 100)
        b = build_query("q2", 100)
        assert (
            a.operator_counts() != b.operator_counts()
            or a.total_input_bytes() != b.total_input_bytes()
        )

    def test_scale_factor_scales_bytes(self):
        small = build_query("q5", 10)
        large = build_query("q5", 100)
        assert large.total_input_bytes() > 2 * small.total_input_bytes()

    def test_same_template_across_scale_factors(self):
        """SF changes data sizes, not query shape (same SQL text)."""
        small = build_query("q5", 10)
        large = build_query("q5", 100)
        assert small.operator_counts() == large.operator_counts()
        assert small.max_depth() == large.max_depth()

    def test_variant_shares_base_structure_but_differs(self):
        base = build_query("q14", 100)
        variant = build_query("q14b", 100)
        assert variant.num_operators() >= base.num_operators()
        # the variant adds its re-parameterized top filter
        assert (
            variant.operator_counts()[OperatorKind.FILTER]
            >= base.operator_counts()[OperatorKind.FILTER]
        )

    def test_every_query_aggregates(self):
        for qid in QUERY_IDS[:30]:
            counts = build_query(qid, 10).operator_counts()
            assert counts[OperatorKind.AGGREGATE] >= 1

    def test_every_query_has_exchange(self):
        for qid in QUERY_IDS[:30]:
            counts = build_query(qid, 10).operator_counts()
            assert counts[OperatorKind.EXCHANGE] >= 1

    def test_unknown_query_rejected(self):
        with pytest.raises(ValueError, match="unknown query id"):
            build_query("q200", 10)

    def test_nonpositive_sf_rejected(self):
        with pytest.raises(ValueError, match="scale factor"):
            build_query("q1", 0)

    def test_seed_changes_templates(self):
        a = build_query("q1", 10, seed=0)
        b = build_query("q1", 10, seed=1)
        assert (
            a.operator_counts() != b.operator_counts()
            or a.total_input_bytes() != b.total_input_bytes()
        )


class TestWorkloadDiversity:
    """Figure 2b / 3c motivation: queries must be genuinely diverse."""

    @pytest.fixture(scope="class")
    def plans(self):
        return tpcds_workload(scale_factor=100)

    def test_full_workload_size(self, plans):
        assert len(plans) == 103

    def test_operator_count_diversity(self, plans):
        totals = np.array([p.num_operators() for p in plans])
        assert totals.std() / totals.mean() > 0.2

    def test_input_bytes_span_orders_of_magnitude(self, plans):
        nbytes = np.array([p.total_input_bytes() for p in plans])
        assert nbytes.max() / nbytes.min() > 20

    def test_depth_varies(self, plans):
        depths = {p.max_depth() for p in plans}
        assert len(depths) >= 4

    def test_multiple_input_source_counts(self, plans):
        counts = {len(p.input_sources()) for p in plans}
        assert len(counts) >= 4

"""Unit tests for the Workload bundle."""

import pytest

from repro.workloads.generator import Workload
from repro.workloads.tpcds import QUERY_IDS


class TestWorkload:
    def test_defaults_to_full_query_set(self):
        w = Workload(scale_factor=1)
        assert len(w) == 103
        assert list(w) == list(QUERY_IDS)

    def test_subset_selection(self):
        w = Workload(scale_factor=1, query_ids=("q1", "q2"))
        assert len(w) == 2

    def test_unknown_subset_rejected(self):
        with pytest.raises(ValueError, match="unknown query ids"):
            Workload(scale_factor=1, query_ids=("q1", "nope"))

    def test_plan_cached(self):
        w = Workload(scale_factor=1)
        assert w.plan("q1") is w.plan("q1")

    def test_plan_outside_subset_rejected(self):
        w = Workload(scale_factor=1, query_ids=("q1",))
        with pytest.raises(KeyError):
            w.plan("q2")

    def test_optimized_plan_is_rewritten(self):
        w = Workload(scale_factor=10)
        raw = w.plan("q9")
        opt = w.optimized_plan("q9")
        # optimization may only shrink the operator count (rewrites drop
        # no-op filters / collapse projects) and never grows input bytes
        assert opt.num_operators() <= raw.num_operators()
        assert opt.total_input_bytes() <= raw.total_input_bytes() + 1e-6

    def test_stage_graph_cached_and_valid(self):
        w = Workload(scale_factor=10)
        g = w.stage_graph("q5")
        assert g is w.stage_graph("q5")
        assert g.total_tasks >= 1
        assert g.query_id == "q5"

    def test_distinct_scale_factors_distinct_graphs(self):
        g10 = Workload(scale_factor=10).stage_graph("q5")
        g100 = Workload(scale_factor=100).stage_graph("q5")
        assert g100.total_work > g10.total_work

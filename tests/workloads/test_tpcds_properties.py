"""Property-based tests for the workload generator (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.optimizer import Optimizer
from repro.engine.plan import OperatorKind
from repro.engine.stages import compile_stages
from repro.workloads.tpcds import QUERY_IDS, build_query

query_ids = st.sampled_from(QUERY_IDS)
scale_factors = st.sampled_from([1, 5, 10, 50, 100])


@settings(max_examples=40, deadline=None)
@given(qid=query_ids, sf=scale_factors)
def test_property_plans_always_validate(qid, sf):
    plan = build_query(qid, sf)
    plan.validate()  # raises on violation
    assert plan.total_input_bytes() > 0
    assert plan.total_rows_processed() > 0
    assert plan.max_depth() >= 3


@settings(max_examples=40, deadline=None)
@given(qid=query_ids, sf=scale_factors)
def test_property_plans_compile_to_valid_stage_graphs(qid, sf):
    graph = compile_stages(build_query(qid, sf))
    graph.validate()
    assert graph.total_work > 0
    assert graph.critical_path_seconds() > graph.driver_seconds
    assert graph.max_stage_width <= 96  # the compiler's width cap


@settings(max_examples=30, deadline=None)
@given(qid=query_ids, sf=scale_factors)
def test_property_optimizer_never_grows_plans(qid, sf):
    """Rewrites only remove or fold operators, never invent work."""
    plan = build_query(qid, sf)
    optimized = Optimizer().optimize(plan).plan
    optimized.validate()
    assert optimized.num_operators() <= plan.num_operators()
    assert optimized.total_input_bytes() <= plan.total_input_bytes() + 1e-6
    # pushdown can only shrink scan cardinalities
    assert (
        optimized.total_rows_processed()
        <= plan.total_rows_processed() + 1e-6
    )


@settings(max_examples=30, deadline=None)
@given(qid=query_ids)
def test_property_bytes_monotone_in_scale_factor(qid):
    sizes = [build_query(qid, sf).total_input_bytes() for sf in (1, 10, 100)]
    assert sizes[0] < sizes[1] < sizes[2]


@settings(max_examples=30, deadline=None)
@given(qid=query_ids, sf=scale_factors)
def test_property_work_scales_with_data(qid, sf):
    small = compile_stages(build_query(qid, 1))
    big = compile_stages(build_query(qid, sf))
    if sf > 1:
        assert big.total_work >= small.total_work


@settings(max_examples=20, deadline=None)
@given(qid=query_ids, sf=scale_factors)
def test_property_scan_leaves_only(qid, sf):
    plan = build_query(qid, sf)
    for node in plan.walk():
        if not node.children:
            assert node.kind == OperatorKind.SCAN

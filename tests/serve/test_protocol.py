"""Unit tests for the hand-rolled HTTP/1.1 framing layer."""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    MAX_HEADER_BYTES,
    HttpRequest,
    HttpResponse,
    ProtocolError,
    json_response,
    read_request,
    render_response,
)


def parse(raw: bytes, max_body_bytes: int = 64 * 1024):
    """Feed raw bytes through read_request on a throwaway stream."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes=max_body_bytes)

    return asyncio.run(run())


def parse_error(raw: bytes, **kwargs) -> ProtocolError:
    with pytest.raises(ProtocolError) as excinfo:
        parse(raw, **kwargs)
    return excinfo.value


class TestRequestParsing:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request is not None
        assert request.method == "GET"
        assert request.target == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_body(self):
        body = b'{"features": []}'
        raw = (
            b"POST /v1/recommend HTTP/1.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        request = parse(raw)
        assert request is not None
        assert request.method == "POST"
        assert request.body == body

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_header_names_lowercased_last_wins(self):
        request = parse(
            b"GET / HTTP/1.1\r\nX-Thing: one\r\nx-thing: two\r\n\r\n"
        )
        assert request is not None
        assert request.headers["x-thing"] == "two"

    def test_http_10_accepted(self):
        request = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert request is not None

    def test_bare_lf_line_endings_accepted(self):
        request = parse(b"GET / HTTP/1.1\nHost: x\n\n")
        assert request is not None
        assert request.headers["host"] == "x"


class TestMalformedRequests:
    def test_garbage_request_line(self):
        assert parse_error(b"NOT A REQUEST\r\n\r\n").status == 400

    def test_unsupported_version(self):
        assert parse_error(b"GET / HTTP/2\r\n\r\n").status == 400

    def test_target_without_slash(self):
        assert parse_error(b"GET nope HTTP/1.1\r\n\r\n").status == 400

    def test_malformed_header_line(self):
        assert parse_error(b"GET / HTTP/1.1\r\nbroken\r\n\r\n").status == 400

    def test_post_without_length_411(self):
        assert parse_error(b"POST /x HTTP/1.1\r\n\r\n").status == 411

    def test_non_numeric_content_length(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
        assert parse_error(raw).status == 400

    def test_negative_content_length(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        assert parse_error(raw).status == 400

    def test_oversized_body_413_before_read(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n"
        assert parse_error(raw, max_body_bytes=100).status == 413

    def test_truncated_body_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        assert parse_error(raw).status == 400

    def test_truncated_head_400(self):
        assert parse_error(b"GET / HTTP/1.1\r\nHost:").status == 400

    def test_oversized_head_431(self):
        filler = b"X-Pad: " + b"a" * 100 + b"\r\n"
        raw = b"GET / HTTP/1.1\r\n" + filler * (
            MAX_HEADER_BYTES // len(filler) + 2
        )
        assert parse_error(raw + b"\r\n").status == 431

    def test_transfer_encoding_501(self):
        raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        assert parse_error(raw).status == 501


class TestBodyJson:
    def test_valid_json(self):
        request = HttpRequest("POST", "/", body=b'{"a": 1}')
        assert request.json() == {"a": 1}

    def test_invalid_json_is_400(self):
        request = HttpRequest("POST", "/", body=b"{nope")
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_invalid_utf8_is_400(self):
        request = HttpRequest("POST", "/", body=b"\xff\xfe")
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_json_response_deterministic_encoding(self):
        a = json_response(200, {"b": 1, "a": 2})
        b = json_response(200, {"a": 2, "b": 1})
        assert a.body == b.body  # sorted keys: dict order is irrelevant

    def test_render_includes_length_and_connection(self):
        raw = render_response(json_response(200, {}), keep_alive=True)
        head = raw.split(b"\r\n\r\n")[0].decode()
        assert "HTTP/1.1 200 OK" in head
        assert "Content-Length: 2" in head
        assert "Connection: keep-alive" in head

    def test_render_close(self):
        raw = render_response(json_response(503, {}), keep_alive=False)
        assert b"Connection: close" in raw

    def test_extra_headers_rendered(self):
        response = HttpResponse(429, b"{}", headers={"Retry-After": "1"})
        assert b"Retry-After: 1" in render_response(
            response, keep_alive=True
        )

    def test_round_trip_body(self):
        payload = {"executors": 8, "cached": False}
        raw = render_response(json_response(200, payload), keep_alive=True)
        body = raw.split(b"\r\n\r\n", 1)[1]
        assert json.loads(body) == payload

"""Fixtures for the serving-layer tests.

The suite runs under ``--import-mode=importlib`` (no sys.path
insertion), so shared *code* helpers live in the test modules that use
them; this conftest carries only the expensive fixture: a real exported
forest registry on disk, for the parity tests that must go through
:class:`repro.export.runtime.PortablePPMScorer`.
"""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES
from repro.export.format import save_model_file
from repro.ml.forest import RandomForestRegressor


@pytest.fixture(scope="session")
def registry(tmp_path_factory):
    """A real portable-model registry with one power-law forest."""
    root = tmp_path_factory.mktemp("serve_registry")
    rng = np.random.default_rng(7)
    X = rng.random((60, len(FEATURE_NAMES)))
    # Power-law parameter targets (a, b, m); from_parameters clamps, so
    # the forest's raw outputs always build valid PPMs.
    Y = np.column_stack(
        [
            -np.abs(rng.random(60)) - 0.1,
            np.abs(rng.random(60)) * 50 + 10,
            np.abs(rng.random(60)) * 2,
        ]
    )
    forest = RandomForestRegressor(n_estimators=6, random_state=0).fit(X, Y)
    save_model_file(
        forest, root / "ae_pl.json", metadata={"family": "power_law"}
    )
    return root

"""Unit tests for the micro-batcher: coalescing, bounds, drain."""

import asyncio

import pytest

from repro.serve.batching import (
    BatcherClosedError,
    MicroBatcher,
    QueueFullError,
    submit_all,
)


def make_batcher(recorded, **kwargs):
    """A batcher whose batch_fn echoes items and records batch sizes."""

    def batch_fn(items):
        recorded.append(list(items))
        return [item * 2 for item in items]

    return MicroBatcher(batch_fn, **kwargs)


class TestCoalescing:
    def test_single_submit(self):
        async def run():
            recorded = []
            batcher = make_batcher(recorded)
            batcher.start()
            result = await batcher.submit(21)
            await batcher.close()
            return result, recorded

        result, recorded = asyncio.run(run())
        assert result == 42
        assert recorded == [[21]]

    def test_concurrent_submits_coalesce(self):
        async def run():
            recorded = []
            batcher = make_batcher(recorded, max_wait_s=0.05)
            batcher.start()
            results = await submit_all(batcher, list(range(10)))
            await batcher.close()
            return results, recorded

        results, recorded = asyncio.run(run())
        assert results == [i * 2 for i in range(10)]
        # All ten landed before the window closed: far fewer batches
        # than items, and every item accounted for exactly once.
        assert sum(len(b) for b in recorded) == 10
        assert len(recorded) < 10
        assert batcher_max(recorded) > 1

    def test_max_batch_size_respected(self):
        async def run():
            recorded = []
            batcher = make_batcher(
                recorded, max_batch_size=4, max_wait_s=0.05
            )
            batcher.start()
            await submit_all(batcher, list(range(10)))
            await batcher.close()
            return recorded

        recorded = asyncio.run(run())
        assert all(len(batch) <= 4 for batch in recorded)
        assert sum(len(b) for b in recorded) == 10

    def test_results_keep_submission_order(self):
        async def run():
            batcher = MicroBatcher(
                lambda items: list(items), max_wait_s=0.05
            )
            batcher.start()
            results = await submit_all(batcher, list(range(32)))
            await batcher.close()
            return results

        assert asyncio.run(run()) == list(range(32))

    def test_stats_accumulate(self):
        async def run():
            recorded = []
            batcher = make_batcher(recorded, max_wait_s=0.05)
            batcher.start()
            await submit_all(batcher, list(range(6)))
            await batcher.close()
            return batcher

        batcher = asyncio.run(run())
        assert batcher.n_items == 6
        assert batcher.n_batches >= 1
        assert batcher.peak_batch_size >= 1
        assert batcher.pending == 0

    def test_observe_batch_callback(self):
        async def run():
            sizes = []
            batcher = MicroBatcher(
                lambda items: list(items),
                max_wait_s=0.05,
                observe_batch=sizes.append,
            )
            batcher.start()
            await submit_all(batcher, list(range(5)))
            await batcher.close()
            return sizes

        sizes = asyncio.run(run())
        assert sum(sizes) == 5


class TestBounds:
    def test_queue_full_sheds(self):
        async def run():
            batcher = MicroBatcher(
                lambda items: list(items), max_pending=2, max_wait_s=10.0
            )
            batcher.start()
            # The long window holds the forming batch open, so both
            # submissions stay pending (undispatched) while we probe.
            first = asyncio.ensure_future(batcher.submit(1))
            second = asyncio.ensure_future(batcher.submit(2))
            await asyncio.sleep(0)  # let both enqueue
            with pytest.raises(QueueFullError):
                await batcher.submit(3)
            # close() flushes the held batch without waiting the window out.
            await batcher.close()
            return await asyncio.gather(first, second)

        assert asyncio.run(run()) == [1, 2]

    def test_submit_after_close_raises(self):
        async def run():
            batcher = MicroBatcher(lambda items: list(items))
            batcher.start()
            await batcher.close()
            with pytest.raises(BatcherClosedError):
                await batcher.submit(1)

        asyncio.run(run())

    def test_constructor_validation(self):
        fn = list
        with pytest.raises(ValueError):
            MicroBatcher(fn, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(fn, max_wait_s=-1)
        with pytest.raises(ValueError):
            MicroBatcher(fn, max_pending=0)


class TestFailures:
    def test_batch_fn_exception_propagates_to_every_waiter(self):
        async def run():
            def explode(items):
                raise RuntimeError("scorer died")

            batcher = MicroBatcher(explode, max_wait_s=0.02)
            batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit(i)) for i in range(3)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await batcher.close()
            return results

        results = asyncio.run(run())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_length_mismatch_is_an_error(self):
        async def run():
            batcher = MicroBatcher(lambda items: [0])  # wrong arity
            batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit(i)) for i in range(2)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await batcher.close()
            return results

        results = asyncio.run(run())
        assert any(isinstance(r, RuntimeError) for r in results)

    def test_failure_then_recovery(self):
        async def run():
            calls = {"n": 0}

            def flaky(items):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("first call fails")
                return list(items)

            batcher = MicroBatcher(flaky)
            batcher.start()
            with pytest.raises(RuntimeError):
                await batcher.submit(1)
            result = await batcher.submit(2)
            await batcher.close()
            return result

        assert asyncio.run(run()) == 2


class TestDrain:
    def test_close_dispatches_queued_items(self):
        async def run():
            recorded = []
            batcher = make_batcher(recorded, max_wait_s=10.0)
            batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit(i)) for i in range(4)
            ]
            await asyncio.sleep(0)  # queue them behind the long window
            await batcher.close()
            return await asyncio.gather(*tasks), recorded

        results, recorded = asyncio.run(run())
        # The long window never expired: close() itself flushed them.
        assert results == [0, 2, 4, 6]
        assert sum(len(b) for b in recorded) == 4

    def test_close_is_idempotent(self):
        async def run():
            batcher = MicroBatcher(lambda items: list(items))
            batcher.start()
            await batcher.close()
            await batcher.close()

        asyncio.run(run())


def batcher_max(recorded):
    return max(len(batch) for batch in recorded)

"""End-to-end tests: live server, real sockets, full request lifecycle.

Deterministic stub scorers stand in for the model on lifecycle tests
(the PPM is a pure function of feature[0], so cache behaviour is
scripted exactly); the parity tests at the bottom use the conftest's
real exported-forest registry.  Everything drives asyncio inline with
``asyncio.run`` — the repo has no pytest-asyncio.
"""

import asyncio
import contextlib
import json

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, QueryFeatures
from repro.core.ppm import PowerLawPPM
from repro.core.selection import elbow_point
from repro.core.training import DEFAULT_N_GRID
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer
from repro.fleet.prediction import PredictionService
from repro.obs.trace import EVENT_KINDS, RingBufferTracer
from repro.serve import RecommendApp, ServeClient, ServerConfig
from repro.serve.server import RecommendationServer

N_FEATURES = len(FEATURE_NAMES)


def features_payload(scale=1.0, query_id=""):
    """A valid /v1/recommend JSON body; ``scale`` keys the cache entry."""
    payload = {"features": [float(scale)] * N_FEATURES}
    if query_id:
        payload["query_id"] = query_id
    return payload


def _ppm_for(scale):
    return PowerLawPPM(a=-0.8, b=50.0 + 10.0 * float(scale), m=2.0)


class StubScorer:
    """Deterministic scorer: the PPM is a function of feature[0] only."""

    def __init__(self):
        self.single_calls = 0
        self.batch_calls = 0
        self.batch_sizes = []

    def predict_ppm(self, features):
        self.single_calls += 1
        return _ppm_for(np.asarray(features.values)[0])

    def predict_ppm_batch(self, matrix):
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        self.batch_calls += 1
        self.batch_sizes.append(matrix.shape[0])
        return [_ppm_for(row[0]) for row in matrix]


class UnbatchedStubScorer:
    """Same predictions, no batch entry point: the fallback path."""

    def __init__(self):
        self.single_calls = 0

    def predict_ppm(self, features):
        self.single_calls += 1
        return _ppm_for(np.asarray(features.values)[0])


@contextlib.asynccontextmanager
async def serve_stack(
    scorer=None,
    *,
    app_kwargs=None,
    config=None,
    tracer=None,
):
    """Start an app+server over ``scorer``; yield (server, app, host, port)."""
    service = PredictionService(
        scorer if scorer is not None else StubScorer(), tracer=tracer
    )
    app = RecommendApp(
        service, model_name="test", tracer=tracer, **(app_kwargs or {})
    )
    server = RecommendationServer(app, config or ServerConfig(port=0))
    await server.start()
    host, port = server.address
    try:
        yield server, app, host, port
    finally:
        await server.shutdown()


@pytest.fixture()
def stub_scorer():
    return StubScorer()


class TestRoutes:
    def test_healthz(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    reply = await client.get("/healthz")
                    return reply.status, reply.json()

        status, body = asyncio.run(run())
        assert status == 200
        assert body == {"model": "test", "status": "ok"}

    def test_recommend_roundtrip_and_cache(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    first = (
                        await client.post_json(
                            "/v1/recommend", features_payload(1.0, "q-1")
                        )
                    ).json()
                    second = (
                        await client.post_json(
                            "/v1/recommend", features_payload(1.0, "q-1")
                        )
                    ).json()
                    return first, second

        first, second = asyncio.run(run())
        assert first["query_id"] == "q-1"
        assert first["cached"] is False
        assert second["cached"] is True  # same signature: memo hit
        assert second["executors"] == first["executors"]
        assert second["estimated_runtime_s"] == first["estimated_runtime_s"]

    def test_unknown_route_404_lists_routes(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    reply = await client.get("/nope")
                    return reply.status, reply.json()

        status, body = asyncio.run(run())
        assert status == 404
        assert "/v1/recommend" in body["routes"]

    def test_method_not_allowed_405(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    get_on_post = await client.get("/v1/recommend")
                    post_on_get = await client.post_json("/metrics", {})
                    return get_on_post, post_on_get

        get_on_post, post_on_get = asyncio.run(run())
        assert get_on_post.status == 405
        assert get_on_post.headers["allow"] == "POST"
        assert post_on_get.status == 405

    def test_keep_alive_connection_reuse(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    statuses = []
                    for _ in range(5):
                        statuses.append((await client.get("/healthz")).status)
                    return statuses

        assert asyncio.run(run()) == [200] * 5


class TestValidation:
    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([1, 2, 3], "JSON object"),
            ({}, '"features"'),
            ({"features": "nope"}, '"features"'),
            ({"features": [1.0] * 3}, "19 entries"),
            (
                {"features": [1.0] * (len(FEATURE_NAMES) - 1) + ["x"]},
                "not a number",
            ),
            (
                {"features": [1.0] * (len(FEATURE_NAMES) - 1) + [True]},
                "not a number",
            ),
            (
                {"features": [1.0] * len(FEATURE_NAMES), "query_id": 7},
                "query_id",
            ),
        ],
    )
    def test_bad_payloads_400(self, stub_scorer, payload, fragment):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    reply = await client.post_json("/v1/recommend", payload)
                    return reply.status, reply.json()

        status, body = asyncio.run(run())
        assert status == 400
        assert fragment in body["error"]

    def test_malformed_json_400(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    reply = await client.request(
                        "POST", "/v1/recommend", body=b"{not json"
                    )
                    return reply.status

        assert asyncio.run(run()) == 400

    def test_oversized_body_413_closes_connection(self, stub_scorer):
        async def run():
            config = ServerConfig(port=0, max_body_bytes=256)
            async with serve_stack(stub_scorer, config=config) as (
                _,
                _,
                host,
                port,
            ):
                async with ServeClient(host, port) as client:
                    reply = await client.request(
                        "POST", "/v1/recommend", body=b"x" * 1024
                    )
                    return reply.status, reply.headers["connection"]

        status, connection = asyncio.run(run())
        assert status == 413
        assert connection == "close"

    def test_raw_garbage_request_line_400(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"garbage\r\n\r\n")
                await writer.drain()
                raw = await reader.read(4096)
                writer.close()
                return raw

        raw = asyncio.run(run())
        assert raw.startswith(b"HTTP/1.1 400")


class TestBatchingBehaviour:
    def test_concurrent_requests_coalesce(self, stub_scorer):
        async def run():
            kwargs = {"max_wait_s": 0.05}
            async with serve_stack(stub_scorer, app_kwargs=kwargs) as (
                _,
                app,
                host,
                port,
            ):

                async def one(i):
                    async with ServeClient(host, port) as client:
                        reply = await client.post_json(
                            "/v1/recommend", features_payload(i % 4)
                        )
                        return reply.json()

                out = await asyncio.gather(*(one(i) for i in range(16)))
                return out, app.batcher.n_batches

        out, n_batches = asyncio.run(run())
        assert len(out) == 16
        assert n_batches < 16  # coalescing happened
        assert max(o["batch_size"] for o in out) > 1

    def test_coalescing_is_deterministic(self, stub_scorer):
        """Recommendations are independent of how requests were grouped.

        The same 24 feature vectors are served twice — serially (every
        request its own batch) and as one concurrent burst (arbitrary
        coalescing) — and must produce identical executor counts and
        runtime estimates (the scorer batch contract carried through the
        HTTP layer).
        """

        scales = [float(i % 6) for i in range(24)]

        async def serve(concurrent):
            async with serve_stack(
                StubScorer(), app_kwargs={"max_wait_s": 0.05}
            ) as (_, _, host, port):

                async def one(scale):
                    async with ServeClient(host, port) as client:
                        reply = await client.post_json(
                            "/v1/recommend", features_payload(scale)
                        )
                        return reply.json()

                if concurrent:
                    return await asyncio.gather(*(one(s) for s in scales))
                return [await one(s) for s in scales]

        serial = asyncio.run(serve(False))
        burst = asyncio.run(serve(True))
        for a, b in zip(serial, burst):
            assert a["executors"] == b["executors"]
            assert a["estimated_runtime_s"] == b["estimated_runtime_s"]

    def test_unbatched_scorer_still_serves(self):
        async def run():
            scorer = UnbatchedStubScorer()
            tracer = RingBufferTracer(capacity=64)
            async with serve_stack(scorer, tracer=tracer) as (
                _,
                app,
                host,
                port,
            ):
                async with ServeClient(host, port) as client:
                    reply = await client.post_json(
                        "/v1/recommend", features_payload(1.0)
                    )
                    metrics = (await client.get("/metrics")).json()
                    return reply.json(), metrics, list(tracer.events)

        body, metrics, events = asyncio.run(run())
        assert body["executors"] >= 1
        assert metrics["prediction"]["batched"] is False
        kinds = [event.kind for event in events]
        assert kinds.count("prediction_fallback") == 1


class TestOverloadAndDeadlines:
    def test_queue_full_429(self, stub_scorer):
        async def run():
            kwargs = {"queue_limit": 1, "max_wait_s": 5.0}
            async with serve_stack(stub_scorer, app_kwargs=kwargs) as (
                _,
                app,
                host,
                port,
            ):

                async def one():
                    async with ServeClient(host, port) as client:
                        reply = await client.post_json(
                            "/v1/recommend", features_payload(1.0)
                        )
                        return reply.status, dict(reply.headers)

                results = await asyncio.gather(*(one() for _ in range(6)))
                await app.batcher.close()
                return results

        results = asyncio.run(run())
        statuses = sorted(status for status, _ in results)
        assert 429 in statuses
        for status, headers in results:
            if status == 429:
                assert headers["retry-after"] == "1"

    def test_deadline_expiry_504(self):
        """A request whose batching wait outlives the deadline gets 504.

        The batch window (2 s) is far longer than the request deadline
        (50 ms), so the lone request expires while waiting for company —
        the realistic expiry mode, since inference itself is a blocking
        call the loop cannot preempt.
        """

        async def run():
            config = ServerConfig(port=0, request_timeout_s=0.05)
            kwargs = {"max_wait_s": 2.0}
            async with serve_stack(
                StubScorer(), config=config, app_kwargs=kwargs
            ) as (
                _,
                app,
                host,
                port,
            ):
                async with ServeClient(host, port) as client:
                    reply = await client.post_json(
                        "/v1/recommend", features_payload(1.0)
                    )
                    status = reply.status
                metrics = app.metrics_snapshot()
                return status, metrics

        status, metrics = asyncio.run(run())
        assert status == 504
        assert metrics["timeouts"] == 1
        assert metrics["status"]["504"] == 1

    def test_handler_bug_500_keeps_connection(self, stub_scorer, monkeypatch):
        async def run():
            async with serve_stack(stub_scorer) as (_, app, host, port):

                async def explode(request):
                    raise ValueError("handler bug")

                monkeypatch.setattr(app, "handle", explode)
                async with ServeClient(host, port) as client:
                    first = (await client.get("/healthz")).status
                    monkeypatch.undo()
                    second = (await client.get("/healthz")).status
                    return first, second

        first, second = asyncio.run(run())
        assert first == 500
        assert second == 200  # same connection survived the failure


class TestShutdown:
    def test_drain_answers_queued_requests(self, stub_scorer):
        async def run():
            kwargs = {"max_wait_s": 5.0}
            async with serve_stack(stub_scorer, app_kwargs=kwargs) as (
                server,
                _,
                host,
                port,
            ):

                async def one():
                    async with ServeClient(host, port) as client:
                        reply = await client.post_json(
                            "/v1/recommend", features_payload(1.0)
                        )
                        return reply.status

                tasks = [asyncio.ensure_future(one()) for _ in range(4)]
                await asyncio.sleep(0.05)  # let them queue into the window
                await server.shutdown()
                return await asyncio.gather(*tasks)

        # Queued requests get real answers, not connection resets.
        assert asyncio.run(run()) == [200] * 4

    def test_post_shutdown_connections_refused_or_closed(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (server, _, host, port):
                await server.shutdown()
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port), 0.5
                    )
                except (ConnectionError, asyncio.TimeoutError):
                    return True
                writer.close()
                return False

        assert asyncio.run(run()) is True

    def test_draining_connections_get_503(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (server, _, host, port):
                client = ServeClient(host, port)
                await client.connect()
                assert (await client.get("/healthz")).status == 200
                # Flip the drain flag directly: the established
                # connection's next request must be refused politely.
                server._draining = True
                reply = await client.get("/healthz")
                await client.close()
                server._draining = False
                return reply.status, reply.headers["connection"]

        status, connection = asyncio.run(run())
        assert status == 503
        assert connection == "close"


class TestMetricsAndTracing:
    def test_metrics_document_shape(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    for scale in (1.0, 1.0, 2.0):
                        await client.post_json(
                            "/v1/recommend", features_payload(scale)
                        )
                    return (await client.get("/metrics")).json()

        metrics = asyncio.run(run())
        assert metrics["model"] == "test"
        assert metrics["requests"]["/v1/recommend"] == 3
        assert metrics["status"]["200"] == 3
        latency = metrics["latency_ms"]["/v1/recommend"]
        assert latency["count"] == 3
        for field in ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"):
            assert latency[field] >= 0
        assert metrics["batch"]["items"] == 3
        assert metrics["prediction"]["hits"] == 1
        assert metrics["prediction"]["misses"] == 2
        assert metrics["prediction"]["hit_rate"] == pytest.approx(1 / 3)
        assert metrics["prediction"]["batched"] is True
        assert metrics["shed"] == 0
        assert metrics["timeouts"] == 0

    def test_trace_events_emitted_and_in_taxonomy(self, stub_scorer):
        async def run():
            tracer = RingBufferTracer(capacity=256)
            async with serve_stack(stub_scorer, tracer=tracer) as (
                _,
                _,
                host,
                port,
            ):
                async with ServeClient(host, port) as client:
                    await client.post_json(
                        "/v1/recommend", features_payload(1.0)
                    )
                    await client.get("/metrics")
                return list(tracer.events)

        events = asyncio.run(run())
        kinds = {event.kind for event in events}
        assert "serve_request" in kinds
        assert "serve_batch" in kinds
        assert kinds <= EVENT_KINDS  # runtime kinds stay in the taxonomy
        request_events = [e for e in events if e.kind == "serve_request"]
        assert {e.data["route"] for e in request_events} == {
            "/v1/recommend",
            "/metrics",
        }


class TestRealModelParity:
    def test_recommendations_match_direct_batch_calls(self, registry):
        """The acceptance bar: HTTP answers are byte-identical to direct
        ``predict_ppm_batch`` + elbow selection over the same model."""

        rng = np.random.default_rng(11)
        matrix = rng.random((12, len(FEATURE_NAMES)))

        async def run():
            tracer = None
            app = RecommendApp.from_registry(
                registry, "ae_pl", tracer=tracer, max_wait_s=0.05
            )
            server = RecommendationServer(app, ServerConfig(port=0))
            await server.start()
            host, port = server.address
            try:

                async def one(row):
                    async with ServeClient(host, port) as client:
                        reply = await client.post_json(
                            "/v1/recommend",
                            {"features": [float(v) for v in row]},
                        )
                        assert reply.status == 200
                        return reply.json()

                return await asyncio.gather(*(one(row) for row in matrix))
            finally:
                await server.shutdown()

        served = asyncio.run(run())

        # The reference computation: one direct batch call, elbow
        # selection over the same grid, the same clamp.
        scorer = PortablePPMScorer(PortableModelRuntime(registry), "ae_pl")
        ppms = scorer.predict_ppm_batch(matrix)
        for row_served, ppm in zip(served, ppms):
            curve = ppm.predict_curve(DEFAULT_N_GRID)
            chosen = int(
                np.clip(elbow_point(DEFAULT_N_GRID, curve), 1, 48)
            )
            runtime = float(curve[np.nonzero(DEFAULT_N_GRID == chosen)[0][0]])
            assert row_served["executors"] == chosen
            # JSON float round-trip is exact (repr round-trips), so the
            # HTTP answer equals the in-process float bit-for-bit.
            assert row_served["estimated_runtime_s"] == runtime

    def test_served_equals_direct_prediction_service(self, registry):
        """Serving adds transport, not decisions: a PredictionService fed
        the same features in-process agrees with the HTTP responses."""

        rng = np.random.default_rng(13)
        matrix = rng.random((8, len(FEATURE_NAMES)))
        features = [QueryFeatures(values=row) for row in matrix]

        async def run():
            app = RecommendApp.from_registry(registry, "ae_pl")
            server = RecommendationServer(app, ServerConfig(port=0))
            await server.start()
            host, port = server.address
            try:
                out = []
                async with ServeClient(host, port) as client:
                    for row in matrix:
                        reply = await client.post_json(
                            "/v1/recommend",
                            {"features": [float(v) for v in row]},
                        )
                        out.append(reply.json())
                return out
            finally:
                await server.shutdown()

        served = asyncio.run(run())
        reference = PredictionService(
            PortablePPMScorer(PortableModelRuntime(registry), "ae_pl")
        )
        direct = reference.predict_batch(features)
        for row_served, prediction in zip(served, direct):
            assert row_served["executors"] == prediction.executors
            assert (
                row_served["estimated_runtime_s"]
                == prediction.estimated_runtime_seconds
            )


class TestJsonDeterminism:
    def test_identical_requests_identical_bytes(self, stub_scorer):
        async def run():
            async with serve_stack(stub_scorer) as (_, _, host, port):
                async with ServeClient(host, port) as client:
                    payload = features_payload(1.0, "q")
                    await client.post_json("/v1/recommend", payload)  # warm
                    first = await client.post_json("/v1/recommend", payload)
                    second = await client.post_json("/v1/recommend", payload)
                    return first.body, second.body

        first, second = asyncio.run(run())
        assert first == second  # sorted keys + cached decision: stable bytes
        assert json.loads(first)["cached"] is True

"""Unit tests for the portable model runtime (the ONNX-runtime stand-in)."""

import numpy as np
import pytest

from repro.core.ppm import AmdahlPPM, PowerLawPPM
from repro.export.format import save_model_file
from repro.export.runtime import PortableModelRuntime, PortablePPMScorer
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    root = tmp_path_factory.mktemp("registry")
    rng = np.random.default_rng(0)
    X = rng.random((60, 19))
    Y_al = np.abs(rng.random((60, 2))) + 0.1
    forest = RandomForestRegressor(n_estimators=6, random_state=0).fit(X, Y_al)
    save_model_file(forest, root / "ae_al.json", metadata={"family": "amdahl"})
    linear = LinearRegression().fit(X, Y_al)
    save_model_file(linear, root / "lin.json", metadata={"family": "amdahl"})
    forest_nofam = RandomForestRegressor(n_estimators=2, random_state=0).fit(
        X, Y_al
    )
    save_model_file(forest_nofam, root / "nofam.json")
    return root, forest, X


class TestRuntime:
    def test_predictions_match_training_library(self, registry):
        """The runtime's independent tree-walker must agree exactly with
        the training-side forest — the ONNX fidelity requirement."""
        root, forest, X = registry
        runtime = PortableModelRuntime(root)
        out = runtime.predict("ae_al", X)
        assert np.allclose(out, forest.predict(X), atol=1e-12)

    def test_single_row_prediction(self, registry):
        root, forest, X = registry
        runtime = PortableModelRuntime(root)
        assert np.allclose(
            runtime.predict("ae_al", X[0]), forest.predict(X[:1])[0]
        )

    def test_linear_model_scoring(self, registry):
        root, _, X = registry
        runtime = PortableModelRuntime(root)
        out = runtime.predict("lin", X[:5])
        assert out.shape == (5, 2)

    def test_model_cached_after_first_load(self, registry):
        root, _, X = registry
        runtime = PortableModelRuntime(root)
        assert not runtime.is_cached("ae_al")
        runtime.predict("ae_al", X[:1])
        assert runtime.is_cached("ae_al")
        loads_before = len(runtime.timings["load"])
        runtime.predict("ae_al", X[:1])
        assert len(runtime.timings["load"]) == loads_before  # no reload

    def test_timings_recorded(self, registry):
        root, _, X = registry
        runtime = PortableModelRuntime(root)
        runtime.predict("ae_al", X[:1])
        runtime.predict("ae_al", X[:1])
        assert len(runtime.timings["load"]) == 1
        assert len(runtime.timings["setup"]) == 1
        assert len(runtime.timings["inference"]) == 2
        assert runtime.mean_timing("inference") > 0

    def test_mean_timing_empty_phase_zero(self, registry):
        runtime = PortableModelRuntime(registry[0])
        assert runtime.mean_timing("load") == 0.0

    def test_missing_model_raises(self, registry):
        runtime = PortableModelRuntime(registry[0])
        with pytest.raises(FileNotFoundError):
            runtime.load("does_not_exist")

    def test_wrong_feature_width_rejected(self, registry):
        root, _, _ = registry
        runtime = PortableModelRuntime(root)
        with pytest.raises(ValueError, match="expects"):
            runtime.predict("ae_al", np.zeros((1, 3)))


class TestPPMScorer:
    def test_scores_to_valid_ppm(self, registry):
        root, _, X = registry
        scorer = PortablePPMScorer(PortableModelRuntime(root), "ae_al")
        ppm = scorer.predict_ppm(X[0])
        assert isinstance(ppm, AmdahlPPM)
        assert ppm.s >= 0 and ppm.p >= 0

    def test_missing_family_metadata_rejected(self, registry):
        root, _, X = registry
        scorer = PortablePPMScorer(PortableModelRuntime(root), "nofam")
        with pytest.raises(ValueError, match="family"):
            scorer.predict_ppm(X[0])

    def test_integrates_with_autoexecutor_rule(self, registry):
        from repro.core.autoexecutor import AutoExecutorRule
        from repro.engine.optimizer import Optimizer
        from repro.workloads.tpcds import build_query

        root, _, _ = registry
        runtime = PortableModelRuntime(root)
        rule = AutoExecutorRule(
            model_loader=lambda: PortablePPMScorer(runtime, "ae_al")
        )
        opt = Optimizer(extension_rules=[rule])
        context = opt.optimize(build_query("q55", scale_factor=1))
        assert context.requested_executors is not None

"""Unit tests for the portable model format."""

import json

import numpy as np
import pytest

from repro.export.format import (
    FORMAT_VERSION,
    export_model,
    load_model_file,
    save_model_file,
    validate_document,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def fitted_forest():
    rng = np.random.default_rng(0)
    X, Y = rng.random((60, 5)), rng.random((60, 2))
    return RandomForestRegressor(n_estimators=8, random_state=0).fit(X, Y), X


class TestExport:
    def test_forest_document_structure(self, fitted_forest):
        forest, _ = fitted_forest
        doc = export_model(forest, metadata={"family": "amdahl"})
        assert doc["format_version"] == FORMAT_VERSION
        assert doc["kind"] == "random_forest"
        assert doc["n_features"] == 5
        assert doc["n_outputs"] == 2
        assert len(doc["trees"]) == 8
        assert doc["metadata"]["family"] == "amdahl"

    def test_document_is_json_serializable(self, fitted_forest):
        forest, _ = fitted_forest
        json.dumps(export_model(forest))  # must not raise

    def test_single_tree_exports_as_one_tree_forest(self, rng):
        tree = DecisionTreeRegressor().fit(rng.random((20, 2)), rng.random(20))
        doc = export_model(tree)
        assert doc["kind"] == "random_forest"
        assert len(doc["trees"]) == 1

    def test_linear_model_export(self, rng):
        reg = LinearRegression().fit(rng.random((20, 3)), rng.random(20))
        doc = export_model(reg)
        assert doc["kind"] == "linear"
        assert len(doc["coef"][0]) == 3

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError, match="unfitted"):
            export_model(RandomForestRegressor())
        with pytest.raises(ValueError, match="unfitted"):
            export_model(LinearRegression())

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="cannot export"):
            export_model(object())


class TestSaveLoad:
    def test_round_trip(self, fitted_forest, tmp_path):
        forest, _ = fitted_forest
        path = tmp_path / "model.json"
        size = save_model_file(forest, path, metadata={"family": "amdahl"})
        assert size > 0
        assert path.stat().st_size == size
        doc = load_model_file(path)
        assert doc["metadata"]["family"] == "amdahl"

    def test_creates_parent_directories(self, fitted_forest, tmp_path):
        forest, _ = fitted_forest
        path = tmp_path / "registry" / "deep" / "model.json"
        save_model_file(forest, path)
        assert path.exists()

    def test_file_size_scales_with_trees(self, rng, tmp_path):
        X, y = rng.random((80, 5)), rng.random(80)
        small = RandomForestRegressor(n_estimators=2, random_state=0).fit(X, y)
        big = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        s_small = save_model_file(small, tmp_path / "s.json")
        s_big = save_model_file(big, tmp_path / "b.json")
        assert s_big > 5 * s_small


class TestValidation:
    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            validate_document({"format_version": 99})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            validate_document({"format_version": 1, "kind": "svm"})

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError, match="no trees"):
            validate_document(
                {"format_version": 1, "kind": "random_forest", "trees": []}
            )

    def test_inconsistent_arrays_rejected(self):
        doc = {
            "format_version": 1,
            "kind": "random_forest",
            "trees": [
                {
                    "feature": [0, -1],
                    "threshold": [0.5],  # wrong length
                    "left": [1, -1],
                    "right": [1, -1],
                    "value": [[0.0], [1.0]],
                }
            ],
        }
        with pytest.raises(ValueError, match="disagree"):
            validate_document(doc)

    def test_linear_missing_coefs_rejected(self):
        with pytest.raises(ValueError, match="coefficients"):
            validate_document({"format_version": 1, "kind": "linear"})

"""The CI benchmark-regression gate (``benchmarks/perf/compare.py``).

The gate is executed the way CI executes it — as a script — against
synthetic BENCH JSON files, so the exit codes the workflow depends on
are pinned here.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
COMPARE = REPO_ROOT / "benchmarks" / "perf" / "compare.py"


def bench_json(
    speedup=10.0,
    bit_identical=True,
    parity=True,
    schema="repro-bench-sweep/v2",
):
    return {
        "schema": schema,
        "machine": {"python": "3.11", "numpy": "2.0", "platform": "test"},
        "params": {"scale_factor": 100, "queries": ["q1"], "counts": [1, 48]},
        "loop": {"seconds": 1.0, "sims": 48, "sims_per_second": 48.0},
        "sweep": {
            "seconds": 1.0 / speedup,
            "sims": 48,
            "sims_per_second": 48.0 * speedup,
        },
        "speedup": speedup,
        "equivalence": {"checked_sims": 48, "bit_identical": bit_identical},
        "parity": {"checked_plans": 16, "bit_identical": parity},
        "fleet": None,
    }


def run_gate(tmp_path, baseline, candidate, *extra):
    base = tmp_path / "baseline.json"
    cand = tmp_path / "candidate.json"
    base.write_text(json.dumps(baseline), encoding="utf-8")
    cand.write_text(json.dumps(candidate), encoding="utf-8")
    return subprocess.run(
        [
            sys.executable,
            str(COMPARE),
            "--baseline",
            str(base),
            "--candidate",
            str(cand),
            *extra,
        ],
        capture_output=True,
        text=True,
    )


def test_equal_speedup_passes(tmp_path):
    proc = run_gate(tmp_path, bench_json(10.0), bench_json(10.0))
    assert proc.returncode == 0, proc.stderr
    assert "no benchmark regression" in proc.stdout


def test_small_regression_within_tolerance_passes(tmp_path):
    proc = run_gate(tmp_path, bench_json(10.0), bench_json(8.5))
    assert proc.returncode == 0, proc.stderr


def test_regression_beyond_tolerance_fails(tmp_path):
    proc = run_gate(tmp_path, bench_json(10.0), bench_json(7.9))
    assert proc.returncode == 1
    assert "regressed" in proc.stderr


def test_speedup_below_acceptance_floor_fails(tmp_path):
    # within 20% of a slow baseline, but below the absolute 5x bar
    proc = run_gate(tmp_path, bench_json(5.0), bench_json(4.2))
    assert proc.returncode == 1
    assert "acceptance floor" in proc.stderr


def test_lost_bit_identity_fails(tmp_path):
    proc = run_gate(
        tmp_path, bench_json(10.0), bench_json(10.0, bit_identical=False)
    )
    assert proc.returncode == 1
    assert "bit-for-bit" in proc.stderr


def test_lost_fleet_parity_fails(tmp_path):
    proc = run_gate(
        tmp_path, bench_json(10.0), bench_json(10.0, parity=False)
    )
    assert proc.returncode == 1
    assert "parity" in proc.stderr


def test_bench_params_drift_fails(tmp_path):
    drifted = bench_json(10.0)
    drifted["params"]["queries"] = ["q2", "q3"]
    proc = run_gate(tmp_path, bench_json(10.0), drifted)
    assert proc.returncode == 1
    assert "params drifted" in proc.stderr


def test_repeats_difference_is_not_param_drift(tmp_path):
    candidate = bench_json(10.0)
    candidate["params"]["repeats"] = 5
    proc = run_gate(tmp_path, bench_json(10.0), candidate)
    assert proc.returncode == 0, proc.stderr


def test_unknown_schema_rejected(tmp_path):
    proc = run_gate(
        tmp_path, bench_json(10.0), bench_json(10.0, schema="bogus/v9")
    )
    assert proc.returncode != 0
    assert "unexpected schema" in proc.stderr


def test_schema_mismatch_between_files_rejected(tmp_path):
    proc = run_gate(tmp_path, bench_json(10.0), fleet_json())
    assert proc.returncode == 1
    assert "schema mismatch" in proc.stderr


def test_custom_tolerance_flag(tmp_path):
    proc = run_gate(
        tmp_path,
        bench_json(10.0),
        bench_json(6.0),
        "--max-regression",
        "0.5",
    )
    assert proc.returncode == 0, proc.stderr


def fleet_json(
    ratio=1.1,
    parity=True,
    zero_fault_parity=True,
    p95_win=True,
    cost_win=True,
    spot_win=True,
    capacity_respected=True,
    spot_capacity_respected=True,
    trace_ratio=1.03,
    traced_bit_identical=True,
):
    scenario = {
        "rate_qps": 2.0,
        "static_single_pool": {"p95_latency_s": 100.0, "capacity_respected": True},
        "sharded_autoscaled": {
            "p95_latency_s": 50.0,
            "capacity_respected": capacity_respected,
        },
    }
    return {
        "schema": "repro-bench-fleet/v3",
        "machine": {"python": "3.11", "numpy": "2.0", "platform": "test"},
        "params": {
            "scale_factor": 100,
            "queries": ["q1"],
            "arrivals": 96,
            "rates": [0.5, 2.0],
            "static_capacity": 96,
            "pools": 4,
            "pool_min": 8,
            "pool_max": 48,
            "seed": 0,
        },
        "parity": {
            "checked_plans": 17,
            "bit_identical": parity,
            "zero_fault_bit_identical": zero_fault_parity,
        },
        "overhead": {
            "fleet_seconds": 1.0,
            "sharded_seconds": ratio,
            "ratio": ratio,
        },
        "tracing": {
            "off_seconds": 1.0,
            "on_seconds": trace_ratio,
            "ratio": trace_ratio,
            "events": 9000,
            "traced_bit_identical": traced_bit_identical,
        },
        "scenarios": [scenario],
        "faults": {
            "rate_qps": 0.3,
            "spot_discount": 0.35,
            "p95_tolerance": 1.05,
            "on_demand": {"p95_latency_s": 100.0, "total_dollar_cost": 8.0},
            "sweep": [
                {
                    "reclaim_rate_per_s": 1.0 / 1200.0,
                    "spot": {
                        "p95_latency_s": 101.0,
                        "total_dollar_cost": 3.0,
                        "capacity_respected": spot_capacity_respected,
                    },
                    "cost_win": True,
                    "matched_p95": True,
                }
            ],
        },
        "wins": {
            "p95_at_peak": p95_win,
            "cost_at_peak": cost_win,
            "spot_at_matched_p95": spot_win,
        },
    }


class TestFleetGate:
    def test_equal_run_passes(self, tmp_path):
        proc = run_gate(tmp_path, fleet_json(), fleet_json())
        assert proc.returncode == 0, proc.stderr
        assert "no benchmark regression" in proc.stdout

    def test_lost_sharded_parity_fails(self, tmp_path):
        proc = run_gate(tmp_path, fleet_json(), fleet_json(parity=False))
        assert proc.returncode == 1
        assert "cluster layer parity lost" in proc.stderr

    def test_lost_zero_fault_parity_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, fleet_json(), fleet_json(zero_fault_parity=False)
        )
        assert proc.returncode == 1
        assert "zero-fault parity lost" in proc.stderr

    def test_lost_spot_win_fails(self, tmp_path):
        proc = run_gate(tmp_path, fleet_json(), fleet_json(spot_win=False))
        assert proc.returncode == 1
        assert "matched p95" in proc.stderr

    def test_spot_capacity_violation_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, fleet_json(), fleet_json(spot_capacity_respected=False)
        )
        assert proc.returncode == 1
        assert "spot pool" in proc.stderr

    def test_lost_p95_win_fails(self, tmp_path):
        proc = run_gate(tmp_path, fleet_json(), fleet_json(p95_win=False))
        assert proc.returncode == 1
        assert "p95 latency" in proc.stderr

    def test_lost_cost_win_fails(self, tmp_path):
        proc = run_gate(tmp_path, fleet_json(), fleet_json(cost_win=False))
        assert proc.returncode == 1
        assert "provisioned $ cost" in proc.stderr

    def test_overhead_within_tolerance_passes(self, tmp_path):
        proc = run_gate(tmp_path, fleet_json(ratio=1.0), fleet_json(ratio=1.15))
        assert proc.returncode == 0, proc.stderr

    def test_overhead_regression_fails(self, tmp_path):
        proc = run_gate(tmp_path, fleet_json(ratio=1.0), fleet_json(ratio=1.3))
        assert proc.returncode == 1
        assert "overhead regressed" in proc.stderr

    def test_lost_traced_parity_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, fleet_json(), fleet_json(traced_bit_identical=False)
        )
        assert proc.returncode == 1
        assert "zero-cost tracing contract lost" in proc.stderr

    def test_tracing_overhead_beyond_ceiling_fails(self, tmp_path):
        proc = run_gate(tmp_path, fleet_json(), fleet_json(trace_ratio=1.2))
        assert proc.returncode == 1
        assert "tracing overhead too high" in proc.stderr

    def test_tracing_overhead_custom_ceiling(self, tmp_path):
        proc = run_gate(
            tmp_path,
            fleet_json(),
            fleet_json(trace_ratio=1.2),
            "--max-trace-overhead",
            "1.25",
        )
        assert proc.returncode == 0, proc.stderr

    def test_params_drift_fails(self, tmp_path):
        drifted = fleet_json()
        drifted["params"]["pools"] = 8
        proc = run_gate(tmp_path, fleet_json(), drifted)
        assert proc.returncode == 1
        assert "params drifted" in proc.stderr

    def test_capacity_invariant_violation_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, fleet_json(), fleet_json(capacity_respected=False)
        )
        assert proc.returncode == 1
        assert "capacity invariant violated" in proc.stderr


def scale_json(
    throughput=4000.0,
    under_rss=True,
    under_heap=True,
    exact=True,
    within_bound=True,
    mp_identical=True,
):
    return {
        "schema": "repro-bench-scale/v1",
        "machine": {"python": "3.11", "numpy": "2.0", "platform": "test"},
        "params": {
            "n_queries": 1_000_000,
            "tracemalloc_queries": 100_000,
            "parity_queries": 50_000,
            "multiprocess_queries": 20_000,
            "rate_qps": 30.0,
            "pools": 4,
            "pool_capacity": 48,
            "budget": 2,
            "seed": 0,
            "rss_ceiling_mb": 192.0,
            "heap_ceiling_mb": 16.0,
        },
        "scale": {
            "n_queries": 1_000_000,
            "wall_seconds": 1_000_000 / throughput,
            "throughput_qps": throughput,
            "peak_rss_mb": 44.0,
            "peak_rss_before_mb": 30.0,
            "rss_ceiling_mb": 192.0,
            "under_rss_ceiling": under_rss,
            "makespan_s": 33_000.0,
        },
        "tracemalloc": {
            "n_queries": 100_000,
            "peak_heap_mb": 0.6,
            "heap_ceiling_mb": 16.0,
            "under_heap_ceiling": under_heap,
        },
        "parity": {
            "streaming": {
                "n_queries": 50_000,
                "exact_fields_equal": exact,
                "percentiles_within_bound": within_bound,
                "relative_accuracy": 0.01,
            },
            "multiprocess": {
                "n_queries": 20_000,
                "bit_identical": mp_identical,
            },
        },
    }


class TestScaleGate:
    def test_equal_run_passes(self, tmp_path):
        proc = run_gate(tmp_path, scale_json(), scale_json())
        assert proc.returncode == 0, proc.stderr
        assert "no benchmark regression" in proc.stdout

    def test_rss_ceiling_break_fails(self, tmp_path):
        proc = run_gate(tmp_path, scale_json(), scale_json(under_rss=False))
        assert proc.returncode == 1
        assert "O(1)-memory contract lost" in proc.stderr

    def test_heap_ceiling_break_fails(self, tmp_path):
        proc = run_gate(tmp_path, scale_json(), scale_json(under_heap=False))
        assert proc.returncode == 1
        assert "Python-heap leak" in proc.stderr

    def test_lost_exact_parity_fails(self, tmp_path):
        proc = run_gate(tmp_path, scale_json(), scale_json(exact=False))
        assert proc.returncode == 1
        assert "exact (non-percentile) field" in proc.stderr

    def test_percentile_out_of_bound_fails(self, tmp_path):
        proc = run_gate(tmp_path, scale_json(), scale_json(within_bound=False))
        assert proc.returncode == 1
        assert "rank-error" in proc.stderr

    def test_lost_multiprocess_identity_fails(self, tmp_path):
        proc = run_gate(tmp_path, scale_json(), scale_json(mp_identical=False))
        assert proc.returncode == 1
        assert "determinism contract lost" in proc.stderr

    def test_throughput_regression_fails(self, tmp_path):
        proc = run_gate(tmp_path, scale_json(4000.0), scale_json(3000.0))
        assert proc.returncode == 1
        assert "throughput regressed" in proc.stderr

    def test_loose_tolerance_passes_slow_machine(self, tmp_path):
        # CI invokes the scale gate with a loose --max-regression because
        # wall clock is not hardware-normalized for this schema.
        proc = run_gate(
            tmp_path,
            scale_json(4000.0),
            scale_json(1800.0),
            "--max-regression",
            "0.6",
        )
        assert proc.returncode == 0, proc.stderr

    def test_params_drift_fails(self, tmp_path):
        drifted = scale_json()
        drifted["params"]["rate_qps"] = 60.0
        proc = run_gate(tmp_path, scale_json(), drifted)
        assert proc.returncode == 1
        assert "params drifted" in proc.stderr


def serve_json(
    throughput=3000.0,
    n_requests=2000,
    errors=0,
    under_p99=True,
    batching_active=True,
    bit_identical=True,
):
    return {
        "schema": "repro-bench-serve/v1",
        "machine": {"python": "3.11", "numpy": "2.0", "platform": "test"},
        "params": {
            "n_requests": n_requests,
            "distinct_queries": 50,
            "concurrency": 32,
            "rate_qps": 500.0,
            "max_batch_size": 32,
            "max_wait_ms": 2.0,
            "timeout_ms": 5000.0,
            "p99_budget_ms": 250.0,
            "seed": 0,
        },
        "serve": {
            "n_requests": n_requests,
            "n_ok": n_requests - errors,
            "errors": errors,
            "wall_seconds": n_requests / throughput,
            "throughput_rps": throughput,
            "p50_ms": 9.0,
            "p95_ms": 14.0,
            "p99_ms": 24.0,
            "max_ms": 25.0,
            "p99_budget_ms": 250.0,
            "under_p99_budget": under_p99,
        },
        "batch": {
            "batches": 63,
            "items": n_requests,
            "mean_size": 31.7 if batching_active else 1.0,
            "peak_size": 32,
            "batching_active": batching_active,
        },
        "cache": {
            "hits": n_requests - 50,
            "misses": 50,
            "hit_rate": (n_requests - 50) / n_requests,
            "batched": True,
        },
        "parity": {
            "n_checked": n_requests,
            "mismatches": 0 if bit_identical else 3,
            "bit_identical": bit_identical,
        },
    }


class TestServeGate:
    def test_equal_run_passes(self, tmp_path):
        proc = run_gate(tmp_path, serve_json(), serve_json())
        assert proc.returncode == 0, proc.stderr
        assert "no benchmark regression" in proc.stdout

    def test_too_few_requests_fails(self, tmp_path):
        # both sides at the small size so the params-drift check (which
        # runs first) stays quiet and the volume gate itself fires
        proc = run_gate(
            tmp_path,
            serve_json(n_requests=800),
            serve_json(n_requests=800),
        )
        assert proc.returncode == 1
        assert "at least 1,000" in proc.stderr

    def test_errors_fail(self, tmp_path):
        proc = run_gate(tmp_path, serve_json(), serve_json(errors=3))
        assert proc.returncode == 1
        assert "not answered 200" in proc.stderr

    def test_p99_budget_break_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, serve_json(), serve_json(under_p99=False)
        )
        assert proc.returncode == 1
        assert "budget" in proc.stderr

    def test_inactive_batching_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, serve_json(), serve_json(batching_active=False)
        )
        assert proc.returncode == 1
        assert "coalescing contract lost" in proc.stderr

    def test_lost_parity_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, serve_json(), serve_json(bit_identical=False)
        )
        assert proc.returncode == 1
        assert "serving fidelity" in proc.stderr

    def test_throughput_regression_fails(self, tmp_path):
        proc = run_gate(tmp_path, serve_json(3000.0), serve_json(2000.0))
        assert proc.returncode == 1
        assert "throughput regressed" in proc.stderr

    def test_loose_tolerance_passes_slow_machine(self, tmp_path):
        # CI invokes the serve gate with a loose --max-regression: wall
        # clock is not hardware-normalized, so the real guards are the
        # in-document budget flags, not the throughput ratio.
        proc = run_gate(
            tmp_path,
            serve_json(3000.0),
            serve_json(1300.0),
            "--max-regression",
            "0.6",
        )
        assert proc.returncode == 0, proc.stderr

    def test_params_drift_fails(self, tmp_path):
        drifted = serve_json()
        drifted["params"]["concurrency"] = 8
        proc = run_gate(tmp_path, serve_json(), drifted)
        assert proc.returncode == 1
        assert "params drifted" in proc.stderr


def adapt_json(
    p95_ratio=1.55,
    cost_ratio=1.05,
    p95_win=True,
    cost_win=True,
    alarms=4,
    fired_after_shift=True,
    zero_retrain=True,
    frozen_capacity=True,
    adaptive_capacity=True,
):
    return {
        "schema": "repro-bench-adapt/v1",
        "machine": {"python": "3.11", "numpy": "2.0", "platform": "test"},
        "params": {
            "queries": ["q1", "q94"],
            "pre_scale_factor": 100,
            "post_scale_factor": 10,
            "n_pre": 24,
            "n_post": 120,
            "rate_pre": 0.08,
            "rate_post": 0.5,
            "capacity": 48,
            "seed": 0,
            "buffer_capacity": 128,
            "min_retrain_points": 16,
            "drift_window": 12,
            "drift_threshold": 0.5,
            "shadow_window": 10,
            "n_estimators": 24,
        },
        "frozen": {
            "p95_latency_s": 149.0,
            "total_dollar_cost": 3.41,
            "capacity_respected": frozen_capacity,
        },
        "adaptive": {
            "p95_latency_s": 149.0 / p95_ratio,
            "total_dollar_cost": 3.41 / cost_ratio,
            "capacity_respected": adaptive_capacity,
            "drift_alarms": alarms,
            "retrains": 4,
            "promotions": 3,
            "rejections": 1,
            "model_generation": 3,
        },
        "drift": {
            "alarms": alarms,
            "shift_time_s": 300.0,
            "first_alarm_time_s": 346.0 if fired_after_shift else 120.0,
            "fired_after_shift": fired_after_shift,
        },
        "improvement": {"p95_ratio": p95_ratio, "cost_ratio": cost_ratio},
        "wins": {"p95": p95_win, "cost": cost_win},
        "parity": {"zero_retrain_bit_identical": zero_retrain},
    }


class TestAdaptGate:
    def test_equal_run_passes(self, tmp_path):
        proc = run_gate(tmp_path, adapt_json(), adapt_json())
        assert proc.returncode == 0, proc.stderr
        assert "no benchmark regression" in proc.stdout

    def test_lost_zero_retrain_parity_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, adapt_json(), adapt_json(zero_retrain=False)
        )
        assert proc.returncode == 1
        assert "no longer serves bit-identically" in proc.stderr

    def test_lost_p95_win_fails(self, tmp_path):
        proc = run_gate(tmp_path, adapt_json(), adapt_json(p95_win=False))
        assert proc.returncode == 1
        assert "p95" in proc.stderr

    def test_lost_cost_win_fails(self, tmp_path):
        proc = run_gate(tmp_path, adapt_json(), adapt_json(cost_win=False))
        assert proc.returncode == 1
        assert "retraining bill" in proc.stderr

    def test_no_drift_alarm_fails(self, tmp_path):
        proc = run_gate(tmp_path, adapt_json(), adapt_json(alarms=0))
        assert proc.returncode == 1
        assert "no drift alarm fired" in proc.stderr

    def test_alarm_before_shift_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, adapt_json(), adapt_json(fired_after_shift=False)
        )
        assert proc.returncode == 1
        assert "fired before the shift" in proc.stderr

    def test_p95_improvement_regression_fails(self, tmp_path):
        proc = run_gate(tmp_path, adapt_json(), adapt_json(p95_ratio=1.10))
        assert proc.returncode == 1
        assert "p95 improvement regressed" in proc.stderr

    def test_cost_improvement_within_tolerance_passes(self, tmp_path):
        # the cost win is narrow by design (the retrain bill is real);
        # the ratio gate tolerates --max-regression drift around it
        proc = run_gate(tmp_path, adapt_json(), adapt_json(cost_ratio=1.01))
        assert proc.returncode == 0, proc.stderr

    def test_cost_improvement_regression_fails(self, tmp_path):
        proc = run_gate(
            tmp_path,
            adapt_json(),
            adapt_json(cost_ratio=0.80, cost_win=False),
        )
        assert proc.returncode == 1
        assert "cost improvement regressed" in proc.stderr

    def test_capacity_violation_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, adapt_json(), adapt_json(adaptive_capacity=False)
        )
        assert proc.returncode == 1
        assert "capacity invariant violated" in proc.stderr

    def test_params_drift_fails(self, tmp_path):
        drifted = adapt_json()
        drifted["params"]["capacity"] = 96
        proc = run_gate(tmp_path, adapt_json(), drifted)
        assert proc.returncode == 1
        assert "params drifted" in proc.stderr


def test_checked_in_scale_baseline_is_valid():
    data = json.loads(
        (REPO_ROOT / "benchmarks" / "perf" / "baseline_scale.json").read_text(
            encoding="utf-8"
        )
    )
    assert data["schema"] == "repro-bench-scale/v1"
    assert data["scale"]["n_queries"] == 1_000_000
    assert data["scale"]["under_rss_ceiling"] is True
    assert data["scale"]["peak_rss_mb"] <= data["scale"]["rss_ceiling_mb"]
    assert data["tracemalloc"]["under_heap_ceiling"] is True
    assert data["parity"]["streaming"]["exact_fields_equal"] is True
    assert data["parity"]["streaming"]["percentiles_within_bound"] is True
    assert data["parity"]["multiprocess"]["bit_identical"] is True


@pytest.mark.parametrize("file", ["baseline.json"])
def test_checked_in_baseline_is_valid(file):
    data = json.loads(
        (REPO_ROOT / "benchmarks" / "perf" / file).read_text(encoding="utf-8")
    )
    assert data["schema"] == "repro-bench-sweep/v2"
    assert data["speedup"] >= 5.0
    assert data["equivalence"]["bit_identical"] is True
    assert data["parity"]["bit_identical"] is True


def test_checked_in_serve_baseline_is_valid():
    data = json.loads(
        (REPO_ROOT / "benchmarks" / "perf" / "baseline_serve.json").read_text(
            encoding="utf-8"
        )
    )
    assert data["schema"] == "repro-bench-serve/v1"
    assert data["serve"]["n_requests"] >= 1000
    assert data["serve"]["errors"] == 0
    assert data["serve"]["under_p99_budget"] is True
    assert data["serve"]["p99_ms"] <= data["serve"]["p99_budget_ms"]
    assert data["batch"]["batching_active"] is True
    assert data["batch"]["mean_size"] > 1.0
    assert data["cache"]["batched"] is True
    assert data["parity"]["bit_identical"] is True
    assert data["parity"]["mismatches"] == 0


def test_checked_in_adapt_baseline_is_valid():
    data = json.loads(
        (REPO_ROOT / "benchmarks" / "perf" / "baseline_adapt.json").read_text(
            encoding="utf-8"
        )
    )
    assert data["schema"] == "repro-bench-adapt/v1"
    assert data["parity"]["zero_retrain_bit_identical"] is True
    assert data["wins"]["p95"] is True
    assert data["wins"]["cost"] is True
    assert data["improvement"]["p95_ratio"] > 1.0
    assert data["improvement"]["cost_ratio"] > 1.0
    assert data["drift"]["alarms"] >= 1
    assert data["drift"]["fired_after_shift"] is True
    assert data["drift"]["first_alarm_time_s"] > data["drift"]["shift_time_s"]
    assert data["frozen"]["capacity_respected"] is True
    assert data["adaptive"]["capacity_respected"] is True
    # the wins are backed by the recorded serves, retrain bill included
    assert data["adaptive"]["p95_latency_s"] < data["frozen"]["p95_latency_s"]
    assert (
        data["adaptive"]["total_dollar_cost"]
        < data["frozen"]["total_dollar_cost"]
    )
    assert data["adaptive"]["retrain_dollar_cost"] > 0.0
    assert data["adaptive"]["promotions"] >= 1
    assert data["adaptive"]["model_generation"] >= 1


def test_checked_in_fleet_baseline_is_valid():
    data = json.loads(
        (REPO_ROOT / "benchmarks" / "perf" / "baseline_fleet.json").read_text(
            encoding="utf-8"
        )
    )
    assert data["schema"] == "repro-bench-fleet/v3"
    assert data["parity"]["bit_identical"] is True
    assert data["parity"]["zero_fault_bit_identical"] is True
    assert data["wins"]["p95_at_peak"] is True
    assert data["wins"]["cost_at_peak"] is True
    assert data["wins"]["spot_at_matched_p95"] is True
    assert data["overhead"]["ratio"] < 2.0
    # the observability layer's zero-cost contract, as measured
    assert data["tracing"]["traced_bit_identical"] is True
    assert data["tracing"]["ratio"] <= 1.10
    assert data["tracing"]["events"] > 0
    # the recorded peak-rate scenario backs the wins block
    peak = data["scenarios"][-1]
    assert (
        peak["sharded_autoscaled"]["p95_latency_s"]
        < peak["static_single_pool"]["p95_latency_s"]
    )
    assert (
        peak["sharded_autoscaled"]["provisioned_dollar_cost"]
        < peak["static_single_pool"]["provisioned_dollar_cost"]
    )
    assert peak["sharded_autoscaled"]["capacity_respected"] is True
    # the recorded fault sweep backs the spot win: cheaper at matched p95
    # at the base reclamation rate, with real retry churn ledgered
    base_spot = data["faults"]["sweep"][0]
    assert base_spot["cost_win"] is True
    assert base_spot["matched_p95"] is True
    assert (
        base_spot["spot"]["total_dollar_cost"]
        < data["faults"]["on_demand"]["total_dollar_cost"]
    )
    assert base_spot["spot"]["task_retries"] > 0

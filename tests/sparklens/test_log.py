"""Unit tests for execution logs."""

import numpy as np
import pytest

from repro.sparklens.log import ExecutionLog, StageLog


class TestStageLog:
    def test_summary_statistics(self):
        stage = StageLog(
            stage_id=0, dependencies=[], task_durations=[1.0, 2.0, 3.0]
        )
        assert stage.total_work == pytest.approx(6.0)
        assert stage.critical_task == pytest.approx(3.0)
        assert stage.num_tasks == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one task"):
            StageLog(stage_id=0, dependencies=[], task_durations=[])

    def test_rejects_nonpositive_durations(self):
        with pytest.raises(ValueError, match="positive"):
            StageLog(stage_id=0, dependencies=[], task_durations=[1.0, 0.0])

    def test_coerces_to_array(self):
        stage = StageLog(stage_id=0, dependencies=[], task_durations=[1, 2])
        assert isinstance(stage.task_durations, np.ndarray)


class TestExecutionLog:
    def test_total_work_sums_stages(self):
        log = ExecutionLog(
            query_id="q",
            driver_seconds=2.0,
            stages=[
                StageLog(0, [], [1.0, 1.0]),
                StageLog(1, [0], [3.0]),
            ],
        )
        assert log.total_work == pytest.approx(5.0)

    def test_rejects_no_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            ExecutionLog(query_id="q", driver_seconds=0.0, stages=[])

    def test_rejects_unknown_dependency(self):
        with pytest.raises(ValueError, match="unknown"):
            ExecutionLog(
                query_id="q", driver_seconds=0.0,
                stages=[StageLog(0, [7], [1.0])],
            )

    def test_rejects_forward_dependency(self):
        with pytest.raises(ValueError, match="topologically"):
            ExecutionLog(
                query_id="q", driver_seconds=0.0,
                stages=[
                    StageLog(0, [1], [1.0]),
                    StageLog(1, [], [1.0]),
                ],
            )

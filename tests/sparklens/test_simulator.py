"""Unit and property tests for the Sparklens estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.allocation import StaticAllocation
from repro.engine.cluster import Cluster
from repro.engine.scheduler import SchedulerConfig, simulate_query
from repro.engine.stages import Stage, StageGraph
from repro.sparklens.log import ExecutionLog, StageLog
from repro.sparklens.simulator import SparklensEstimator


def make_log(driver=2.0):
    return ExecutionLog(
        query_id="q",
        driver_seconds=driver,
        stages=[
            StageLog(0, [], np.full(64, 1.0)),
            StageLog(1, [0], np.full(16, 2.0)),
            StageLog(2, [1], [5.0]),
        ],
        cores_per_executor=4,
    )


class TestEstimates:
    def test_wide_open_estimate_is_critical_path(self):
        est = SparklensEstimator(make_log())
        # enough slots that every stage is bounded by its longest task
        assert est.estimate(1000) == pytest.approx(2.0 + 1.0 + 2.0 + 5.0)

    def test_single_executor_is_work_bound(self):
        est = SparklensEstimator(make_log())
        # 4 slots: stage work 64, 32, 5 -> 64/4 + 32/4 + max(5, 5/4)
        assert est.estimate(1) == pytest.approx(2.0 + 16.0 + 8.0 + 5.0)

    def test_monotone_non_increasing(self):
        est = SparklensEstimator(make_log())
        curve = est.estimate_curve(range(1, 49))
        assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_saturation_time_matches_large_n(self):
        est = SparklensEstimator(make_log())
        assert est.estimate(10_000) == pytest.approx(est.saturation_time())

    def test_estimate_rejects_zero_executors(self):
        with pytest.raises(ValueError):
            SparklensEstimator(make_log()).estimate(0)

    def test_recommended_executors_reaches_saturation(self):
        est = SparklensEstimator(make_log())
        n_rec = est.recommended_executors(tolerance=0.05)
        assert est.estimate(n_rec) <= est.saturation_time() * 1.05
        if n_rec > 1:
            assert est.estimate(n_rec - 1) > est.saturation_time() * 1.05

    def test_recommended_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            SparklensEstimator(make_log()).recommended_executors(-0.1)


class TestAgainstSimulator:
    """Sparklens replays the scheduler — on friction-free workloads its
    estimates should closely track the real (simulated) run times."""

    NO_FRICTION = SchedulerConfig(
        spill_coefficient=0.0, coordination_coefficient=0.0
    )

    @pytest.fixture(scope="class")
    def log_and_graph(self):
        graph = StageGraph(
            stages=[
                Stage(stage_id=0, num_tasks=96, task_seconds=1.0),
                Stage(stage_id=1, num_tasks=24, task_seconds=2.0,
                      dependencies=[0]),
            ],
            driver_seconds=2.0,
            query_id="q",
        )
        result = simulate_query(
            graph, StaticAllocation(16), Cluster(), self.NO_FRICTION,
            record_log=True,
        )
        return result.execution_log, graph

    def test_estimate_at_logged_n_close_to_actual(self, log_and_graph):
        log, graph = log_and_graph
        actual = simulate_query(
            graph, StaticAllocation(16), Cluster(), self.NO_FRICTION
        ).runtime
        estimate = SparklensEstimator(log).estimate(16)
        assert abs(estimate - actual) / actual < 0.25

    def test_estimates_track_other_n_within_tolerance(self, log_and_graph):
        log, graph = log_and_graph
        est = SparklensEstimator(log)
        for n in (2, 4, 8, 32):
            actual = simulate_query(
                graph, StaticAllocation(n), Cluster(), self.NO_FRICTION
            ).runtime
            assert abs(est.estimate(n) - actual) / actual < 0.3

    def test_sparklens_misses_memory_pressure_at_small_n(self):
        """The paper's Section 5.2 bias: logs from n=16 can't anticipate
        the spill slowdown a real n=1 run would suffer."""
        cfg = SchedulerConfig(spill_coefficient=1.0, coordination_coefficient=0.0)
        cluster = Cluster()
        graph = StageGraph(
            stages=[Stage(stage_id=0, num_tasks=64, task_seconds=1.0)],
            driver_seconds=1.0,
            working_set_bytes=3 * cluster.executor_memory_bytes,
            query_id="q",
        )
        log = simulate_query(
            graph, StaticAllocation(16), cluster, cfg, record_log=True
        ).execution_log
        actual_n1 = simulate_query(
            graph, StaticAllocation(1), cluster, cfg
        ).runtime
        estimate_n1 = SparklensEstimator(log).estimate(1)
        assert estimate_n1 < actual_n1 * 0.8  # systematic underestimate


@settings(max_examples=25, deadline=None)
@given(
    widths=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=99),
)
def test_property_estimates_monotone_and_above_critical_path(widths, seed):
    rng = np.random.default_rng(seed)
    stages = [
        StageLog(i, [i - 1] if i else [], rng.uniform(0.5, 3.0, w))
        for i, w in enumerate(widths)
    ]
    log = ExecutionLog(query_id="q", driver_seconds=1.0, stages=stages)
    est = SparklensEstimator(log)
    curve = est.estimate_curve(range(1, 30))
    assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:]))
    assert curve.min() >= est.saturation_time() - 1e-9

"""Shared fixtures.

Expensive, deterministic artifacts (workloads, training datasets, ground
truth) are session-scoped: the suite builds each exactly once.  Tests that
need the full 103-query workload use ``workload100``; most use the smaller
``workload_small`` (a 20-query subset at SF=5) to stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.training import build_training_dataset
from repro.engine.cluster import Cluster
from repro.experiments.runtime_data import collect_actual_runtimes
from repro.workloads.generator import Workload
from repro.workloads.tpcds import QUERY_IDS

SMALL_QUERY_IDS = tuple(QUERY_IDS[::5])  # 21 spread-out queries


@pytest.fixture(scope="session")
def cluster() -> Cluster:
    return Cluster()


@pytest.fixture(scope="session")
def workload_small() -> Workload:
    return Workload(scale_factor=5, query_ids=SMALL_QUERY_IDS)


@pytest.fixture(scope="session")
def workload100() -> Workload:
    return Workload(scale_factor=100)


@pytest.fixture(scope="session")
def dataset_small(workload_small, cluster):
    return build_training_dataset(workload_small, cluster)


@pytest.fixture(scope="session")
def actuals_small(workload_small, cluster):
    return collect_actual_runtimes(
        workload_small, cluster, repeats=3, seed=0
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
